"""The memory-market broker: spot pricing, admission control, leases.

Memtrade's central insight (arXiv 2108.06893) is that harvested VM
memory is a *perishable commodity*: producers offer capacity they may
snatch back at any moment, so the broker sells it as revocable spot
leases, prices it by utilization, and admission-controls so the books
always balance.  This module is that broker, simulation-grade:

* :class:`SpotPricing` — a convex utilization curve: cheap while the
  market is slack, steep as harvested capacity sells out, so latecomer
  consumers are priced out before the ledger can oversell.
* :class:`Lease` — one grant: consumer, page count, unit price, the
  per-producer backing map, and the revocation priority class.
* :class:`Broker` — the ledger.  ``offer`` / ``request`` / ``release``
  / ``reclaim`` / ``vm_died`` keep three conservation laws (granted <=
  harvested per producer, no double-grant, all leases freed on VM
  removal), and every mutation reports to the
  :class:`~repro.check.MarketInvariants` shadow ledger when a checker
  is attached — the broker is never trusted to audit itself.

The broker is deliberately passive (no process of its own): harvesters
and consumer loops call it synchronously on the simulated timeline, so
two same-seed runs perform identical transactions in identical order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..check.invariants import NULL_CHECKER, CorrectnessChecker
from ..errors import MarketError
from ..obs import NULL_OBS, Observability

__all__ = ["SpotPricing", "Lease", "Broker"]

#: Revocation priority classes, lowest evicted first.
PRIORITY_SPOT = 0
PRIORITY_STANDARD = 1
PRIORITY_PREMIUM = 2


@dataclass(frozen=True)
class SpotPricing:
    """Utilization-driven spot price per page (milli-credits).

    ``quote(u) = base * (1 + slope * u^2)`` rounded to a tenth of a
    milli-credit: convex, so the last pages of supply cost the most —
    the demand damper that replaces a real market's bid queue.
    """

    base_millicredits: float = 10.0
    slope: float = 9.0

    def quote(self, utilization: float) -> float:
        u = min(1.0, max(0.0, utilization))
        return round(self.base_millicredits * (1.0 + self.slope * u * u), 1)


class Lease:
    """One active (or ended) grant of harvested pages to a consumer."""

    __slots__ = (
        "lease_id", "consumer", "pages", "price_per_page", "priority",
        "granted_at", "backing", "active", "ended_at", "end_reason",
    )

    def __init__(
        self,
        lease_id: int,
        consumer: str,
        pages: int,
        price_per_page: float,
        priority: int,
        granted_at: float,
        backing: Dict[str, int],
    ) -> None:
        self.lease_id = lease_id
        self.consumer = consumer
        self.pages = pages
        self.price_per_page = price_per_page
        self.priority = priority
        self.granted_at = granted_at
        #: producer name -> pages of this lease that producer backs.
        self.backing = backing
        self.active = True
        self.ended_at: Optional[float] = None
        self.end_reason: Optional[str] = None

    def __repr__(self) -> str:
        state = "active" if self.active else f"ended({self.end_reason})"
        return (
            f"<Lease {self.lease_id} {self.consumer!r} {self.pages}p "
            f"@{self.price_per_page} prio={self.priority} {state}>"
        )


class _ProducerAccount:
    __slots__ = ("harvested", "granted")

    def __init__(self) -> None:
        #: Pages currently on offer (free + granted out).
        self.harvested = 0
        #: Pages currently granted to consumers.
        self.granted = 0

    @property
    def free(self) -> int:
        return self.harvested - self.granted


class Broker:
    """The marketplace ledger and matching engine."""

    def __init__(
        self,
        env=None,
        pricing: Optional[SpotPricing] = None,
        obs: Optional[Observability] = None,
        check: Optional[CorrectnessChecker] = None,
    ) -> None:
        self.env = env
        self.pricing = pricing or SpotPricing()
        self.obs = obs if obs is not None else NULL_OBS
        self.check = check if check is not None else NULL_CHECKER
        self._obs_on = self.obs.enabled
        self._check_on = self.check.enabled
        self._producers: Dict[str, _ProducerAccount] = {}
        self._leases: Dict[int, Lease] = {}
        self._by_consumer: Dict[str, List[int]] = {}
        self._next_lease_id = 1
        self.counters = self.obs.counters_for(component="broker")
        #: Called as listener(lease, reason) whenever an active lease is
        #: revoked by the broker (give-back or producer death) rather
        #: than released by its consumer — the fleet downgrades the
        #: consumer's tier here.
        self.revocation_listeners: List[Callable[[Lease, str], None]] = []

    # -- clock / gauges ---------------------------------------------------------

    @property
    def _now(self) -> float:
        return self.env.now if self.env is not None else 0.0

    def _update_gauges(self) -> None:
        if not self._obs_on:
            return
        registry = self.obs.registry
        registry.gauge("market_harvested_pages").set(self.total_harvested)
        registry.gauge("market_granted_pages").set(self.total_granted)
        registry.gauge("market_spot_price_millicredits").set(
            self.spot_price()
        )

    # -- accounting views --------------------------------------------------------

    @property
    def total_harvested(self) -> int:
        return sum(
            account.harvested for account in self._producers.values()
        )

    @property
    def total_granted(self) -> int:
        return sum(account.granted for account in self._producers.values())

    @property
    def available_pages(self) -> int:
        return self.total_harvested - self.total_granted

    def utilization(self) -> float:
        harvested = self.total_harvested
        if harvested <= 0:
            return 0.0
        return self.total_granted / harvested

    def spot_price(self) -> float:
        """Current per-page spot quote."""
        return self.pricing.quote(self.utilization())

    def outstanding_of(self, producer: str) -> int:
        """Pages this producer currently has on the market."""
        account = self._producers.get(producer)
        return account.harvested if account is not None else 0

    def leases_of(self, consumer: str) -> List[Lease]:
        """The consumer's active leases (grant order)."""
        return [
            self._leases[lease_id]
            for lease_id in self._by_consumer.get(consumer, ())
            if self._leases[lease_id].active
        ]

    def granted_to(self, consumer: str) -> int:
        return sum(lease.pages for lease in self.leases_of(consumer))

    def active_leases(self) -> List[Lease]:
        return [
            self._leases[lease_id] for lease_id in sorted(self._leases)
            if self._leases[lease_id].active
        ]

    def ledger(self) -> Dict[str, object]:
        """Deterministic snapshot for audits and the invariant monitor."""
        return {
            "producers": {
                name: {
                    "harvested": account.harvested,
                    "granted": account.granted,
                }
                for name, account in sorted(self._producers.items())
            },
            "active_leases": sorted(
                lease_id for lease_id, lease in self._leases.items()
                if lease.active
            ),
            "total_harvested": self.total_harvested,
            "total_granted": self.total_granted,
            "spot_price": self.spot_price(),
        }

    # -- producer side -----------------------------------------------------------

    def offer(self, producer: str, pages: int) -> int:
        """A producer puts harvested pages on the market."""
        if pages <= 0:
            raise MarketError(
                f"offer must be positive, got {pages} from {producer!r}"
            )
        account = self._producers.setdefault(producer, _ProducerAccount())
        account.harvested += pages
        self.counters.incr("offers")
        self.counters.incr("pages_offered", by=pages)
        if self._check_on:
            self.check.market.on_offer(producer, pages)
        self._update_gauges()
        return pages

    def reclaim(self, producer: str, pages: int) -> Tuple[int, List[Lease]]:
        """Give-back: pull up to ``pages`` back off the market, fast.

        Free (un-granted) capacity goes first; if that does not cover
        the request, backing leases are revoked whole in eviction
        priority order — spot before standard before premium, newest
        first within a class (the oldest commitments are honoured the
        longest).  Returns ``(pages_reclaimed, revoked_leases)``.
        """
        if pages <= 0:
            raise MarketError(
                f"reclaim must be positive, got {pages} for {producer!r}"
            )
        account = self._producers.get(producer)
        if account is None or account.harvested == 0:
            return 0, []
        target = min(pages, account.harvested)
        revoked: List[Lease] = []
        # Revoke until the producer's free pool covers the target.
        while account.free < target:
            victim = self._revocation_victim(producer)
            if victim is None:  # pragma: no cover - free >= target then
                break
            self._close_lease(victim, "revoked")
            revoked.append(victim)
            self.counters.incr("revocations")
        reclaimed = min(target, account.free)
        account.harvested -= reclaimed
        self.counters.incr("reclaims")
        self.counters.incr("pages_reclaimed", by=reclaimed)
        if self._check_on and reclaimed:
            self.check.market.on_reclaim(producer, reclaimed)
        self._update_gauges()
        return reclaimed, revoked

    def _revocation_victim(self, producer: str) -> Optional[Lease]:
        """Lowest priority, then youngest, among leases this producer
        backs."""
        candidates = [
            lease for lease in self._leases.values()
            if lease.active and producer in lease.backing
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda lease: (
                lease.priority, -lease.granted_at, -lease.lease_id
            ),
        )

    # -- consumer side -----------------------------------------------------------

    def request(
        self,
        consumer: str,
        pages: int,
        max_price_per_page: float = float("inf"),
        priority: int = PRIORITY_STANDARD,
    ) -> Optional[Lease]:
        """Admission control: grant a lease or reject the request.

        A request is rejected (returns ``None``) when the market lacks
        free capacity or the spot quote exceeds the consumer's bid —
        never partially filled, so a consumer can size its fallback
        path deterministically.
        """
        if pages <= 0:
            raise MarketError(
                f"request must be positive, got {pages} from {consumer!r}"
            )
        if self.available_pages < pages:
            self.counters.incr("rejects_capacity")
            return None
        price = self.spot_price()
        if price > max_price_per_page:
            self.counters.incr("rejects_price")
            return None
        backing: Dict[str, int] = {}
        remaining = pages
        # Deterministic allocation: drain the freest producer first so
        # revocation risk spreads; names break ties.
        for name, account in sorted(
            self._producers.items(), key=lambda kv: (-kv[1].free, kv[0])
        ):
            if remaining == 0:
                break
            share = min(account.free, remaining)
            if share <= 0:
                continue
            backing[name] = share
            account.granted += share
            remaining -= share
        assert remaining == 0, "admission check guaranteed capacity"
        lease = Lease(
            self._next_lease_id, consumer, pages, price, priority,
            self._now, backing,
        )
        self._next_lease_id += 1
        self._leases[lease.lease_id] = lease
        self._by_consumer.setdefault(consumer, []).append(lease.lease_id)
        self.counters.incr("grants")
        self.counters.incr("pages_granted", by=pages)
        if self._check_on:
            self.check.market.on_grant(
                lease.lease_id, consumer, pages, backing
            )
        self._update_gauges()
        return lease

    def release(self, lease: Lease) -> None:
        """A consumer returns a lease voluntarily."""
        if not lease.active:
            raise MarketError(f"{lease!r} is not active")
        self._close_lease(lease, "released")
        self.counters.incr("releases")
        self._update_gauges()

    def _close_lease(self, lease: Lease, reason: str) -> None:
        lease.active = False
        lease.ended_at = self._now
        lease.end_reason = reason
        for producer in sorted(lease.backing):
            account = self._producers.get(producer)
            if account is not None:
                account.granted -= lease.backing[producer]
        if self._check_on:
            self.check.market.on_lease_closed(lease.lease_id, reason)
        if reason != "released":
            for listener in self.revocation_listeners:
                listener(lease, reason)

    # -- lifecycle ----------------------------------------------------------------

    def vm_died(self, name: str) -> None:
        """Fail-stop: free every lease the VM held and every page it
        offered (revoking the leases its harvest backed)."""
        self._remove_vm(name, "vm_death")
        self.counters.incr("vm_deaths")

    def deregister(self, name: str) -> None:
        """Graceful exit: same teardown, accounted separately."""
        self._remove_vm(name, "deregistered")
        self.counters.incr("deregistrations")

    def _remove_vm(self, name: str, reason: str) -> None:
        # Consumer side: its leases end (backing returns to the pool).
        for lease_id in list(self._by_consumer.get(name, ())):
            lease = self._leases[lease_id]
            if lease.active:
                self._close_lease(lease, reason)
        self._by_consumer.pop(name, None)
        # Producer side: leases backed by it lose their substrate.
        account = self._producers.get(name)
        if account is not None:
            for lease in sorted(
                (
                    lease for lease in self._leases.values()
                    if lease.active and name in lease.backing
                ),
                key=lambda lease: lease.lease_id,
            ):
                self._close_lease(lease, reason)
                self.counters.incr("revocations")
            reclaimed = account.harvested
            account.harvested = 0
            if self._check_on and reclaimed:
                self.check.market.on_reclaim(name, reclaimed)
            del self._producers[name]
        if self._check_on:
            self.check.market.on_vm_removed(name)
        self._update_gauges()

    def __repr__(self) -> str:
        return (
            f"<Broker harvested={self.total_harvested} "
            f"granted={self.total_granted} "
            f"leases={len(self.active_leases())} "
            f"price={self.spot_price()}>"
        )
