"""A fleet of lightweight market VMs on one simulated timeline.

The marketplace only gets interesting at *fleet* scale — hundreds of
VMs with heterogeneous working sets, some over-provisioned (producers
the harvesters skim), some memory-starved (consumers leasing remote
pages), with crashes and demand surges stirring the pot.  Standing up
hundreds of full FluidMem monitor stacks would drown the signal in
setup cost, so this module models each VM at exactly the fidelity the
market sees:

* **Residency and aging are real.**  Every :class:`MarketVM` keeps its
  resident pages on a genuine kernel
  :class:`~repro.kernel.ActiveInactiveLists` — accesses set referenced
  bits, eviction uses the two-list second-chance scan, and the
  harvester's WSS estimate is the same
  :meth:`~repro.kernel.ActiveInactiveLists.wss_estimate` page-access
  statistic a real guest would export.
* **Access patterns are YCSB-shaped.**  Each VM draws page numbers
  from its own seeded :class:`~repro.workloads.ycsb.ZipfianGenerator`
  (hot head, long tail), so working sets emerge from the workload
  rather than being declared.
* **Faults are charged, not simulated page-by-page.**  A miss costs a
  modeled latency (first touch < remote lease < swap) recorded into
  the per-tenant QoS window; simulated time advances once per fleet
  tick.  Two same-seed runs replay identical access streams in
  identical order, fast paths on or off.

Chaos rides in on a standard :class:`~repro.faults.FaultPlan` under a
fleet convention: a **CRASH** window on node ``<vm-name>`` is a
fail-stop (the broker tears down the VM's leases — invariant-checked —
and the VM later reboots cold), and a **SLOW** window on node
``surge:<vm-name>`` is a demand surge (the VM's working set expands to
its whole footprint — accesses go uniform — and its access rate
doubles, so its fault rate spikes: the give-back trigger).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from ..errors import MarketError
from ..faults import FaultPlan
from ..kernel import ActiveInactiveLists
from ..mem import PAGE_SIZE, Page
from ..obs import NULL_OBS, Observability
from ..sim import Environment, RandomStreams
from ..workloads.ycsb import ZipfianGenerator
from .broker import Broker
from .harvester import HarvestConfig, Harvester
from .qos import QosManager, TenantSlo

__all__ = [
    "TenantSpec",
    "MarketVM",
    "MarketFleet",
    "FIRST_TOUCH_US",
    "REMOTE_FAULT_US",
    "SWAP_FAULT_US",
    "MIN_CONSUMER_DEMAND_PAGES",
    "apply_chaos",
    "build_tenant_vms",
    "consumer_demand",
    "summarize_tenants",
]

#: Modeled fault-service latencies (µs).  A first touch is a zero-fill;
#: a leased remote page is a fabric RTT + copy (the paper's Table I
#: scale); a swap fault pays the block device.  The market's entire
#: value proposition is the gap between the last two.
FIRST_TOUCH_US = 4.0
REMOTE_FAULT_US = 9.0
SWAP_FAULT_US = 150.0

#: Eviction work charged when a harvest shrinks a VM (µs/page).
_EVICT_US_PER_PAGE = 0.2
#: No VM shrinks below this local budget (the balloon-floor analogue).
_MIN_CAPACITY_PAGES = 32
#: Consumers ignore shortfalls below this — a lease that small is not
#: worth a market round trip.
MIN_CONSUMER_DEMAND_PAGES = 16


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a named group of identical VMs under one SLO."""

    name: str
    vms: int
    #: ``producer`` VMs harvest surplus onto the market; ``consumer``
    #: VMs lease remote pages to cover a working set their local
    #: budget cannot hold.
    role: str
    footprint_pages: int
    capacity_pages: int
    slo: TenantSlo
    accesses_per_tick: int = 24
    #: Zipf skew of the tenant's access stream.
    theta: float = 0.99
    #: Consumer bid ceiling (milli-credits/page); producers ignore it.
    max_price: float = 100.0
    #: Per-request lease size cap for consumers.
    lease_request_cap: int = 256

    def __post_init__(self) -> None:
        if self.role not in ("producer", "consumer"):
            raise MarketError(f"unknown role {self.role!r}")
        if self.vms < 1:
            raise MarketError("a tenant needs at least one VM")
        if not _MIN_CAPACITY_PAGES <= self.capacity_pages:
            raise MarketError(
                f"capacity must be >= {_MIN_CAPACITY_PAGES} pages"
            )
        if self.footprint_pages < self.capacity_pages:
            raise MarketError("footprint must be >= capacity")


@dataclass
class _VmStats:
    hits: int = 0
    faults: int = 0
    first_touches: int = 0
    remote_hits: int = 0
    swap_faults: int = 0
    deaths: int = 0
    extra: Dict[str, int] = field(default_factory=dict)


class MarketVM:
    """One fleet VM: Zipfian accesses over a real aging LRU.

    Also implements the harvester-target protocol (``capacity``,
    ``wss_estimate``, ``fault_count``, ``harvest``, ``give_back``), so
    producer VMs plug straight into :class:`~repro.market.Harvester`.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        spec: TenantSpec,
        rng,
    ) -> None:
        self.env = env
        self.name = name
        self.spec = spec
        self.capacity = spec.capacity_pages
        self.lists = ActiveInactiveLists()
        self.pages: Dict[int, Page] = {}
        #: Pages held in leased remote memory (FIFO for demotion).
        self.remote: "OrderedDict[int, bool]" = OrderedDict()
        self.remote_budget = 0
        self.rng = rng
        self.zipf = ZipfianGenerator(
            spec.footprint_pages, rng, theta=spec.theta
        )
        #: True while a surge window covers ``surge:<name>`` — the
        #: working set expands to the whole footprint (uniform draws).
        self.surging = False
        self.dead = False
        self.stats = _VmStats()
        self.harvested_pages = 0

    # -- harvester-target protocol -------------------------------------------------

    def wss_estimate(self) -> int:
        return self.lists.wss_estimate()

    def fault_count(self) -> int:
        return self.stats.faults

    def harvest(self, pages: int) -> Generator:
        """Shrink the local budget; evicted pages fall to swap."""
        taken = min(pages, self.capacity - _MIN_CAPACITY_PAGES)
        if taken <= 0:
            yield self.env.timeout(1.0)
            return 0
        self.capacity -= taken
        evicted = self._evict_to_capacity()
        self.harvested_pages += taken
        yield self.env.timeout(1.0 + _EVICT_US_PER_PAGE * evicted)
        return taken

    def give_back(self, pages: int) -> int:
        returned = min(pages, self.harvested_pages)
        self.capacity += returned
        self.harvested_pages -= returned
        return returned

    # -- consumer side ---------------------------------------------------------------

    def set_remote_budget(self, pages: int) -> None:
        """Track the broker's grant total; demote any overflow (oldest
        remote pages first) back to swap."""
        self.remote_budget = pages
        while len(self.remote) > pages:
            self.remote.popitem(last=False)

    def remote_shortfall(self) -> int:
        """Pages of working set not covered by local + leased memory."""
        return max(
            0,
            self.wss_estimate() + self.spec.lease_request_cap // 8
            - self.capacity - self.remote_budget,
        )

    # -- the access loop --------------------------------------------------------------

    def run_tick(self, qos: QosManager, throttle_us: float) -> None:
        """One tick of Zipfian accesses; faults feed the QoS window."""
        lists = self.lists
        pages = self.pages
        footprint = self.spec.footprint_pages
        accesses = self.spec.accesses_per_tick * (2 if self.surging else 1)
        for _ in range(accesses):
            page_no = (
                self.rng.randrange(footprint) if self.surging
                else self.zipf.next() % footprint
            )
            vaddr = page_no * PAGE_SIZE
            page = pages.get(vaddr)
            if page is not None and page in lists:
                page.read()
                self.stats.hits += 1
                continue
            self.stats.faults += 1
            if vaddr in self.remote:
                del self.remote[vaddr]
                latency = REMOTE_FAULT_US + throttle_us
                self.stats.remote_hits += 1
            elif page is None:
                page = Page(vaddr)
                pages[vaddr] = page
                latency = FIRST_TOUCH_US
                self.stats.first_touches += 1
            else:
                latency = SWAP_FAULT_US + throttle_us
                self.stats.swap_faults += 1
            if len(lists) >= self.capacity:
                self._evict_to_capacity(headroom=1)
            lists.insert(page)
            page.read()
            qos.record_fault(self.spec.name, latency)

    def _evict_to_capacity(self, headroom: int = 0) -> int:
        """Evict via the kernel's second-chance scan until the resident
        set fits ``capacity - headroom``; victims spill to leased
        remote memory while the budget lasts, then to swap."""
        target = max(0, self.capacity - headroom)
        evicted = 0
        while len(self.lists) > target:
            victims = self.lists.select_victims(len(self.lists) - target)
            if not victims:
                # Every page got a second chance this scan; age harder.
                victims = self.lists.select_victims(
                    len(self.lists) - target, scan_limit_factor=64
                )
                if not victims:  # pragma: no cover - defensive
                    break
            for victim in victims:
                if len(self.remote) < self.remote_budget:
                    self.remote[victim.vaddr] = True
                evicted += 1
        return evicted

    # -- lifecycle ----------------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: residency, leases, and harvested state all gone."""
        self.dead = True
        self.stats.deaths += 1
        self.lists = ActiveInactiveLists()
        self.pages.clear()
        self.remote.clear()
        self.remote_budget = 0
        self.capacity = self.spec.capacity_pages
        self.harvested_pages = 0

    def reboot(self) -> None:
        """Come back cold: same spec, empty memory, faults ahead."""
        self.dead = False

    def __repr__(self) -> str:
        state = "dead" if self.dead else "alive"
        return (
            f"<MarketVM {self.name} {state} cap={self.capacity} "
            f"resident={len(self.lists)} remote={len(self.remote)}>"
        )


def build_tenant_vms(
    env: Environment, spec: TenantSpec, streams: RandomStreams
) -> List[MarketVM]:
    """The VMs of one tenant, named ``<tenant>-NNN``.

    Each VM's RNG stream is derived from its *name*, not from draw
    order, so any subset of tenants built in any process replays the
    exact access streams of the full serial fleet.
    """
    vms = []
    for index in range(spec.vms):
        name = f"{spec.name}-{index:03d}"
        vms.append(MarketVM(env, name, spec, streams.stream(f"vm:{name}")))
    return vms


def apply_chaos(
    plan: FaultPlan,
    now: float,
    vms: List[MarketVM],
    harvesters: Dict[str, Harvester],
    counters,
    on_death,
) -> None:
    """One tick of the fleet chaos convention over ``vms`` in order.

    CRASH windows fail-stop the VM (``on_death(name)`` tells the
    ledger's owner — the broker in the serial fleet, the coordinator's
    pipe in a sharded run); ``surge:<name>`` SLOW windows toggle the
    demand surge.  A crashed producer's harvester gets its fault
    baseline re-synced so the post-reboot rate estimate is not negative.
    """
    for vm in vms:
        crashed = plan.is_crashed(vm.name, now)
        if crashed and not vm.dead:
            vm.crash()
            on_death(vm.name)
            harvester = harvesters.get(vm.name)
            if harvester is not None:
                harvester._last_faults = vm.stats.faults
            counters.incr("vm_crashes")
        elif not crashed and vm.dead:
            vm.reboot()
            counters.incr("vm_reboots")
        vm.surging = plan.extra_latency_us(f"surge:{vm.name}", now) > 0


def consumer_demand(vm: MarketVM) -> Optional[int]:
    """Pages this VM wants from the market this round, or ``None``.

    ``None`` for dead VMs, producers, and shortfalls under
    :data:`MIN_CONSUMER_DEMAND_PAGES`.
    """
    if vm.dead or vm.spec.role != "consumer":
        return None
    shortfall = vm.remote_shortfall()
    if shortfall < MIN_CONSUMER_DEMAND_PAGES:
        return None
    return min(shortfall, vm.spec.lease_request_cap)


def summarize_tenants(
    specs: List[TenantSpec], vms: List[MarketVM], qos: QosManager
) -> Dict[str, Dict[str, object]]:
    """Per-tenant aggregates for the bench table, in spec order."""
    summary: Dict[str, Dict[str, object]] = {}
    for spec in specs:
        tenant_vms = [vm for vm in vms if vm.spec is spec]
        summary[spec.name] = {
            "role": spec.role,
            "vms": len(tenant_vms),
            "priority": spec.slo.priority,
            "slo_us": spec.slo.p99_fault_latency_us,
            "p99_us": qos.last_p99.get(spec.name, 0.0),
            "violations": qos.violation_counts.get(spec.name, 0),
            "faults": sum(vm.stats.faults for vm in tenant_vms),
            "hits": sum(vm.stats.hits for vm in tenant_vms),
            "remote_hits": sum(vm.stats.remote_hits for vm in tenant_vms),
            "swap_faults": sum(vm.stats.swap_faults for vm in tenant_vms),
            "deaths": sum(vm.stats.deaths for vm in tenant_vms),
        }
    return summary


class MarketFleet:
    """Drives the whole marketplace: VMs, harvesters, broker, QoS."""

    def __init__(
        self,
        env: Environment,
        specs: List[TenantSpec],
        streams: RandomStreams,
        broker: Broker,
        qos: QosManager,
        fault_plan: Optional[FaultPlan] = None,
        harvest_config: Optional[HarvestConfig] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.env = env
        self.specs = list(specs)
        self.broker = broker
        self.qos = qos
        self.fault_plan = fault_plan
        self.obs = obs if obs is not None else NULL_OBS
        self._obs_on = self.obs.enabled
        self.counters = self.obs.counters_for(component="fleet")
        self.vms: List[MarketVM] = []
        self.harvesters: Dict[str, Harvester] = {}
        names = set()
        for spec in self.specs:
            if spec.name in names:
                raise MarketError(f"duplicate tenant name {spec.name!r}")
            names.add(spec.name)
            self.qos.register(spec.name, spec.slo)
            for vm in build_tenant_vms(env, spec, streams):
                self.vms.append(vm)
                if spec.role == "producer":
                    self.harvesters[vm.name] = Harvester(
                        env, vm.name, vm, broker,
                        config=harvest_config, obs=self.obs,
                    )
        self._by_name = {vm.name: vm for vm in self.vms}
        self.lease_rejections = 0
        broker.revocation_listeners.append(self._on_revocation)

    # -- broker callbacks ------------------------------------------------------------

    def _on_revocation(self, lease, reason: str) -> None:
        vm = self._by_name.get(lease.consumer)
        if vm is not None:
            vm.set_remote_budget(self.broker.granted_to(vm.name))
            self.counters.incr("consumer_revocations")

    # -- chaos --------------------------------------------------------------------------

    def _apply_chaos(self) -> None:
        plan = self.fault_plan
        if plan is None:
            return
        apply_chaos(
            plan, self.env.now, self.vms, self.harvesters,
            self.counters, self.broker.vm_died,
        )

    # -- market round -----------------------------------------------------------------

    def _market_step(self) -> Generator:
        """Harvest, lease, evaluate QoS — one market interval."""
        for name in sorted(self.harvesters):
            harvester = self.harvesters[name]
            if not harvester.target.dead:
                yield from harvester.tick()
        for vm in self.vms:
            want = consumer_demand(vm)
            if want is None:
                continue
            lease = self.broker.request(
                vm.name,
                want,
                max_price_per_page=vm.spec.max_price,
                priority=vm.spec.slo.priority,
            )
            if lease is None:
                self.lease_rejections += 1
            else:
                vm.set_remote_budget(self.broker.granted_to(vm.name))
        p99s = self.qos.evaluate()
        if self._obs_on:
            registry = self.obs.registry
            for tenant in sorted(p99s):
                registry.gauge(
                    "tenant_p99_fault_latency_us", tenant=tenant
                ).set(p99s[tenant])
            registry.gauge("fleet_alive_vms").set(
                sum(1 for vm in self.vms if not vm.dead)
            )

    # -- main loop ----------------------------------------------------------------------

    def run(
        self,
        ticks: int,
        tick_us: float = 10_000.0,
        market_every: int = 3,
        check=None,
    ) -> Generator:
        """The fleet process: access ticks with periodic market rounds.

        When a :class:`~repro.check.CorrectnessChecker` is supplied,
        every market round ends with a steady-state audit of the
        broker's books against the shadow ledger.
        """
        if ticks < 1:
            raise MarketError("need at least one tick")
        check_on = check is not None and check.enabled
        for tick in range(ticks):
            self._apply_chaos()
            for vm in self.vms:
                if vm.dead:
                    continue
                throttle = self.qos.throttle_delay_us(vm.spec.name)
                vm.run_tick(self.qos, throttle)
            if (tick + 1) % market_every == 0:
                yield from self._market_step()
                if check_on:
                    check.check_steady_state(broker=self.broker)
            yield self.env.timeout(tick_us)
        # Drain: producers leave gracefully, consumers release leases.
        for name in sorted(self.harvesters):
            self.harvesters[name].shutdown()
        for vm in self.vms:
            if not vm.dead and vm.spec.role == "consumer":
                for lease in self.broker.leases_of(vm.name):
                    self.broker.release(lease)
                vm.set_remote_budget(0)
        if check_on:
            check.check_steady_state(broker=self.broker)

    # -- reporting ----------------------------------------------------------------------

    def tenant_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant aggregates for the bench table."""
        return summarize_tenants(self.specs, self.vms, self.qos)

    def __repr__(self) -> str:
        return (
            f"<MarketFleet vms={len(self.vms)} "
            f"producers={len(self.harvesters)} "
            f"tenants={len(self.specs)}>"
        )
