"""A miniature ZooKeeper: a replicated, globally consistent tree.

FluidMem uses ZooKeeper for exactly one thing (paper §IV): the replicated
table that guarantees global uniqueness of virtual-partition indexes.  We
model the parts that matter for that — a hierarchical znode tree with
versioned writes, ephemeral and sequence nodes, sessions, and quorum
semantics with failure injection — and skip watches/ACLs.

All replicas apply every committed operation, so reads from any live
replica are consistent (the real system gives sync+read; our clients
always observe the committed state, which is the guarantee FluidMem
relies on).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..errors import (
    CoordinationError,
    NoNodeError,
    NodeExistsError,
    QuorumLostError,
    SessionExpiredError,
)

__all__ = ["ZNode", "ZooKeeperEnsemble", "ZooKeeperClient"]


class ZNode:
    """One node of the tree: data, version, children, ownership."""

    __slots__ = ("data", "version", "children", "ephemeral_owner", "cseq")

    def __init__(self, data: bytes = b"", ephemeral_owner: Optional[int] = None):
        self.data = data
        self.version = 0
        self.children: Dict[str, "ZNode"] = {}
        self.ephemeral_owner = ephemeral_owner
        #: Monotonic counter for sequence-node suffixes under this parent.
        self.cseq = 0


def _split(path: str) -> List[str]:
    if not path.startswith("/") or path != path.rstrip() or "//" in path:
        raise CoordinationError(f"invalid znode path {path!r}")
    if path == "/":
        return []
    parts = path[1:].split("/")
    if any(not p for p in parts):
        raise CoordinationError(f"invalid znode path {path!r}")
    return parts


class _Replica:
    """One replica's copy of the tree."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.alive = True
        self.root = ZNode()

    def walk(self, parts: List[str]) -> ZNode:
        node = self.root
        for part in parts:
            child = node.children.get(part)
            if child is None:
                raise NoNodeError("/" + "/".join(parts))
            node = child
        return node


class ZooKeeperEnsemble:
    """A quorum of replicas plus session bookkeeping."""

    def __init__(self, replica_count: int = 3) -> None:
        if replica_count < 1 or replica_count % 2 == 0:
            raise CoordinationError(
                f"replica count must be odd and >= 1, got {replica_count}"
            )
        self.replicas = [_Replica(i) for i in range(replica_count)]
        self._session_ids = itertools.count(1)
        self._live_sessions: Dict[int, "ZooKeeperClient"] = {}

    # -- failure injection ---------------------------------------------------

    @property
    def quorum_size(self) -> int:
        return len(self.replicas) // 2 + 1

    @property
    def alive_count(self) -> int:
        return sum(1 for replica in self.replicas if replica.alive)

    @property
    def has_quorum(self) -> bool:
        return self.alive_count >= self.quorum_size

    def stop_replica(self, index: int) -> None:
        self.replicas[index].alive = False

    def start_replica(self, index: int) -> None:
        """Restart a replica; it catches up by copying a live peer."""
        replica = self.replicas[index]
        if replica.alive:
            return
        donor = next((r for r in self.replicas if r.alive), None)
        if donor is not None:
            replica.root = _copy_tree(donor.root)
        replica.alive = True

    # -- sessions -------------------------------------------------------------

    def connect(self) -> "ZooKeeperClient":
        self._require_quorum()
        session_id = next(self._session_ids)
        client = ZooKeeperClient(self, session_id)
        self._live_sessions[session_id] = client
        return client

    def expire_session(self, session_id: int) -> None:
        """Kill a session: its ephemeral nodes vanish everywhere."""
        client = self._live_sessions.pop(session_id, None)
        if client is None:
            return
        client._expired = True
        for replica in self.replicas:
            _remove_ephemerals(replica.root, session_id)

    # -- committed operations (applied to every live replica) ------------------

    def _require_quorum(self) -> None:
        if not self.has_quorum:
            raise QuorumLostError(
                f"only {self.alive_count}/{len(self.replicas)} replicas alive"
            )

    def _read_replica(self) -> _Replica:
        self._require_quorum()
        for replica in self.replicas:
            if replica.alive:
                return replica
        raise QuorumLostError("no live replica")  # pragma: no cover

    def commit_create(
        self,
        path: str,
        data: bytes,
        session_id: int,
        ephemeral: bool,
        sequence: bool,
    ) -> str:
        self._require_quorum()
        parts = _split(path)
        if not parts:
            raise NodeExistsError("/")
        parent_parts, name = parts[:-1], parts[-1]

        # Determine the final name once, using the first live replica's
        # counter, then apply identically everywhere (ZAB total order).
        reference = self._read_replica()
        parent_ref = reference.walk(parent_parts)
        if sequence:
            name = f"{name}{parent_ref.cseq:010d}"
        if name in parent_ref.children:
            raise NodeExistsError("/" + "/".join(parent_parts + [name]))

        owner = session_id if ephemeral else None
        for replica in self.replicas:
            if not replica.alive:
                continue
            parent = replica.walk(parent_parts)
            if sequence:
                parent.cseq += 1
            parent.children[name] = ZNode(data, ephemeral_owner=owner)
        return "/" + "/".join(parent_parts + [name])

    def commit_set(self, path: str, data: bytes, version: int) -> int:
        self._require_quorum()
        parts = _split(path)
        node_ref = self._read_replica().walk(parts)
        if version != -1 and node_ref.version != version:
            raise CoordinationError(
                f"version mismatch on {path}: "
                f"expected {version}, have {node_ref.version}"
            )
        new_version = node_ref.version + 1
        for replica in self.replicas:
            if not replica.alive:
                continue
            node = replica.walk(parts)
            node.data = data
            node.version = new_version
        return new_version

    def commit_delete(self, path: str, version: int) -> None:
        self._require_quorum()
        parts = _split(path)
        if not parts:
            raise CoordinationError("cannot delete the root")
        node_ref = self._read_replica().walk(parts)
        if version != -1 and node_ref.version != version:
            raise CoordinationError(f"version mismatch on {path}")
        if node_ref.children:
            raise CoordinationError(f"{path} has children")
        for replica in self.replicas:
            if not replica.alive:
                continue
            parent = replica.walk(parts[:-1])
            parent.children.pop(parts[-1], None)

    def read_get(self, path: str) -> Tuple[bytes, int]:
        node = self._read_replica().walk(_split(path))
        return node.data, node.version

    def read_exists(self, path: str) -> bool:
        try:
            self._read_replica().walk(_split(path))
            return True
        except NoNodeError:
            return False

    def read_children(self, path: str) -> List[str]:
        node = self._read_replica().walk(_split(path))
        return sorted(node.children)


def _copy_tree(node: ZNode) -> ZNode:
    clone = ZNode(node.data, ephemeral_owner=node.ephemeral_owner)
    clone.version = node.version
    clone.cseq = node.cseq
    clone.children = {
        name: _copy_tree(child) for name, child in node.children.items()
    }
    return clone


def _remove_ephemerals(node: ZNode, session_id: int) -> None:
    doomed = [
        name
        for name, child in node.children.items()
        if child.ephemeral_owner == session_id
    ]
    for name in doomed:
        del node.children[name]
    for child in node.children.values():
        _remove_ephemerals(child, session_id)


class ZooKeeperClient:
    """A session handle; mirrors the subset of the ZK client API we need."""

    def __init__(self, ensemble: ZooKeeperEnsemble, session_id: int) -> None:
        self._ensemble = ensemble
        self.session_id = session_id
        self._expired = False

    def _check(self) -> None:
        if self._expired:
            raise SessionExpiredError(f"session {self.session_id} expired")

    def create(
        self,
        path: str,
        data: bytes = b"",
        ephemeral: bool = False,
        sequence: bool = False,
    ) -> str:
        """Create a znode; returns the actual path (sequence suffixing)."""
        self._check()
        return self._ensemble.commit_create(
            path, data, self.session_id, ephemeral, sequence
        )

    def ensure_path(self, path: str) -> None:
        """Create all missing ancestors of ``path`` (and the path itself)."""
        self._check()
        parts = _split(path)
        current = ""
        for part in parts:
            current += "/" + part
            try:
                self._ensemble.commit_create(
                    current, b"", self.session_id, False, False
                )
            except NodeExistsError:
                pass

    def get(self, path: str) -> Tuple[bytes, int]:
        self._check()
        return self._ensemble.read_get(path)

    def set(self, path: str, data: bytes, version: int = -1) -> int:
        self._check()
        return self._ensemble.commit_set(path, data, version)

    def delete(self, path: str, version: int = -1) -> None:
        self._check()
        self._ensemble.commit_delete(path, version)

    def exists(self, path: str) -> bool:
        self._check()
        return self._ensemble.read_exists(path)

    def children(self, path: str) -> List[str]:
        self._check()
        return self._ensemble.read_children(path)

    def close(self) -> None:
        self._ensemble.expire_session(self.session_id)
