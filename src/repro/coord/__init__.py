"""Cluster coordination: the mini-ZooKeeper ensemble."""

from .zookeeper import ZNode, ZooKeeperClient, ZooKeeperEnsemble

__all__ = ["ZooKeeperEnsemble", "ZooKeeperClient", "ZNode"]
