"""Block-device abstraction.

Swap-based disaggregation (the paper's comparison point) pushes every
remote-memory access through the block layer: a bio is built, queued on
the device, serviced, and completed by interrupt.  The three concrete
devices — remote DRAM (``/dev/pmem0``), an NVMeoF target, and a local SSD
— differ only in their service-time models, so they share this queueing
skeleton.

Devices expose 4 KB-sector reads/writes as simulation generators and
enforce a bounded queue depth: when the queue is full, submitters wait,
which is exactly the congestion behaviour that produces swap's latency
plateaus under load (Fig. 3d–f).
"""

from __future__ import annotations

import abc
import random
from typing import Generator

from ..errors import OutOfRangeError
from ..mem import PAGE_SIZE
from ..sim import CounterSet, Environment, LatencyRecorder, Resource

__all__ = ["BlockDevice", "SECTOR_BYTES"]

#: We use page-sized sectors: swap I/O is always whole 4 KB pages.
SECTOR_BYTES = PAGE_SIZE


class BlockDevice(abc.ABC):
    """Queued block device with per-op service-time sampling."""

    name: str = "blockdev"

    def __init__(
        self,
        env: Environment,
        capacity_bytes: int,
        rng: random.Random,
        queue_depth: int = 32,
    ) -> None:
        if capacity_bytes < SECTOR_BYTES:
            raise OutOfRangeError(
                f"device needs >= one sector, got {capacity_bytes} bytes"
            )
        self.env = env
        self.capacity_bytes = capacity_bytes
        self.num_sectors = capacity_bytes // SECTOR_BYTES
        self._rng = rng
        self._queue = Resource(env, capacity=queue_depth)
        self.counters = CounterSet()
        self.read_latency = LatencyRecorder(f"{self.name}.read",
                                            max_samples=100_000)
        self.write_latency = LatencyRecorder(f"{self.name}.write",
                                             max_samples=100_000)

    # -- service-time models (device-specific) -------------------------------

    @abc.abstractmethod
    def read_service_us(self, nbytes: int) -> float:
        """Sampled device time to serve an ``nbytes`` read."""

    @abc.abstractmethod
    def write_service_us(self, nbytes: int) -> float:
        """Sampled device time to serve an ``nbytes`` write."""

    # -- I/O ------------------------------------------------------------------

    def read(self, sector: int, nbytes: int = SECTOR_BYTES) -> Generator:
        """Read ``nbytes`` at ``sector``; a simulation sub-process."""
        self._check(sector, nbytes)
        start = self.env.now
        slot = self._queue.try_acquire()
        if slot is None:
            slot = self._queue.request()
            yield slot
        try:
            service_us = self.read_service_us(nbytes)
            if not self.env.try_advance(service_us):
                yield self.env.timeout(service_us)
        finally:
            self._queue.release(slot)
        self.counters.incr("reads")
        self.read_latency.record(self.env.now - start)

    def write(self, sector: int, nbytes: int = SECTOR_BYTES) -> Generator:
        """Write ``nbytes`` at ``sector``; a simulation sub-process."""
        self._check(sector, nbytes)
        start = self.env.now
        slot = self._queue.try_acquire()
        if slot is None:
            slot = self._queue.request()
            yield slot
        try:
            service_us = self.write_service_us(nbytes)
            if not self.env.try_advance(service_us):
                yield self.env.timeout(service_us)
        finally:
            self._queue.release(slot)
        self.counters.incr("writes")
        self.write_latency.record(self.env.now - start)

    def _check(self, sector: int, nbytes: int) -> None:
        if nbytes <= 0 or nbytes % SECTOR_BYTES:
            raise OutOfRangeError(
                f"I/O size must be a positive sector multiple, got {nbytes}"
            )
        last = sector + nbytes // SECTOR_BYTES
        if sector < 0 or last > self.num_sectors:
            raise OutOfRangeError(
                f"I/O [{sector}, {last}) beyond device of "
                f"{self.num_sectors} sectors"
            )

    @property
    def queue_length(self) -> int:
        return self._queue.queue_length

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"{self.capacity_bytes >> 20} MiB>"
        )


def gauss_at_least(rng: random.Random, mean: float, sigma: float,
                   floor: float) -> float:
    """A truncated-below Gaussian sample; shared by device models."""
    return max(floor, rng.gauss(mean, sigma))
