"""Concrete block devices: remote DRAM (pmem), NVMeoF, SSD.

Service-time targets are reverse-engineered from Figure 3's in-VM fault
averages (see DESIGN.md §5): the swap software path adds ~14 µs around
the device, and the overall averages are 26.34 µs (DRAM), 41.73 µs
(NVMeoF), and 106.56 µs (SSD) with ~25 % sub-10 µs hits.  That puts the
per-device 4 KB read near 15 µs / 35 µs / 120 µs respectively.
"""

from __future__ import annotations

import random
from typing import Optional

from ..net import Fabric
from ..sim import Environment
from .device import BlockDevice, gauss_at_least

__all__ = ["PmemDisk", "NvmeofDisk", "SsdDisk"]


class PmemDisk(BlockDevice):
    """``/dev/pmem0``-style DRAM-backed block device on this host.

    No medium latency at all — the cost is purely the NVMe-ish software
    stack and a 4 KB copy.  Used as the lower bound for swap-based
    approaches ("swap backed by local DRAM ... as a lower bound",
    §VI-A).
    """

    name = "pmem"

    READ_MEAN_US = 16.0
    READ_SIGMA_US = 2.5
    WRITE_MEAN_US = 13.0
    WRITE_SIGMA_US = 2.0
    FLOOR_US = 4.0
    #: Marginal cost per extra contiguous page (requests amortize the
    #: fixed software path; only the copy grows).
    MARGINAL_FRACTION = 0.15

    def read_service_us(self, nbytes: int) -> float:
        pages = nbytes // 4096
        base = gauss_at_least(
            self._rng, self.READ_MEAN_US, self.READ_SIGMA_US, self.FLOOR_US
        )
        return base * (1 + self.MARGINAL_FRACTION * (pages - 1))

    def write_service_us(self, nbytes: int) -> float:
        pages = nbytes // 4096
        base = gauss_at_least(
            self._rng, self.WRITE_MEAN_US, self.WRITE_SIGMA_US, self.FLOOR_US
        )
        return base * (1 + self.MARGINAL_FRACTION * (pages - 1))


class NvmeofDisk(BlockDevice):
    """NVMe-over-Fabrics target: remote DRAM behind an RDMA block layer.

    Each 4 KB request crosses the fabric twice (command + data/response)
    and pays the target's block processing.  This is the stand-in for
    Infiniswap-class remote swap (§VI-A uses NVMeoF for exactly that
    role).
    """

    name = "nvmeof"

    TARGET_PROCESS_US = 30.0
    TARGET_SIGMA_US = 4.0
    FLOOR_US = 6.0

    def __init__(
        self,
        env: Environment,
        capacity_bytes: int,
        rng: random.Random,
        fabric: Optional[Fabric] = None,
        initiator_host: str = "",
        target_host: str = "",
        queue_depth: int = 32,
    ) -> None:
        super().__init__(env, capacity_bytes, rng, queue_depth=queue_depth)
        self._fabric = fabric
        self._initiator = initiator_host
        self._target = target_host

    def _fabric_rtt(self, payload_bytes: int) -> float:
        if self._fabric is not None:
            return self._fabric.sample_rtt(
                self._initiator, self._target, 96, payload_bytes
            )
        # Standalone: approximate an FDR RDMA round trip inline.
        transport_us = 2.2 * 2 + payload_bytes * 8 / 56_000.0
        return transport_us + abs(self._rng.gauss(0.0, 0.8))

    #: Marginal target-side cost per extra contiguous page.
    MARGINAL_FRACTION = 0.15

    def read_service_us(self, nbytes: int) -> float:
        pages = nbytes // 4096
        target = gauss_at_least(
            self._rng, self.TARGET_PROCESS_US,
            self.TARGET_SIGMA_US, self.FLOOR_US
        ) * (1 + self.MARGINAL_FRACTION * (pages - 1))
        return self._fabric_rtt(nbytes) + target

    def write_service_us(self, nbytes: int) -> float:
        pages = nbytes // 4096
        target = gauss_at_least(
            self._rng, self.TARGET_PROCESS_US,
            self.TARGET_SIGMA_US, self.FLOOR_US
        ) * (1 + self.MARGINAL_FRACTION * (pages - 1))
        return self._fabric_rtt(96) + nbytes * 8 / 56_000.0 + target


class SsdDisk(BlockDevice):
    """Local SATA/NVMe SSD with flash read/program asymmetry."""

    name = "ssd"

    READ_MEAN_US = 120.0
    READ_SIGMA_US = 25.0
    WRITE_MEAN_US = 35.0       # writes land in the device's DRAM buffer
    WRITE_SIGMA_US = 10.0
    FLOOR_US = 25.0
    #: Marginal flash-read cost per extra contiguous page.
    MARGINAL_FRACTION = 0.3
    #: Occasional garbage-collection stall.
    GC_PROB = 0.004
    GC_STALL_US = 2000.0

    def read_service_us(self, nbytes: int) -> float:
        pages = nbytes // 4096
        base = gauss_at_least(
            self._rng, self.READ_MEAN_US,
            self.READ_SIGMA_US, self.FLOOR_US
        ) * (1 + self.MARGINAL_FRACTION * (pages - 1))
        if self._rng.random() < self.GC_PROB:
            base += self.GC_STALL_US * self._rng.random()
        return base

    def write_service_us(self, nbytes: int) -> float:
        pages = nbytes // 4096
        base = gauss_at_least(
            self._rng, self.WRITE_MEAN_US,
            self.WRITE_SIGMA_US, self.FLOOR_US
        ) * (1 + self.MARGINAL_FRACTION * (pages - 1))
        if self._rng.random() < self.GC_PROB:
            base += self.GC_STALL_US * self._rng.random()
        return base
