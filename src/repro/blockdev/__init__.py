"""Block devices: the substrate under swap-based disaggregation."""

from .device import SECTOR_BYTES, BlockDevice
from .media import NvmeofDisk, PmemDisk, SsdDisk

__all__ = [
    "BlockDevice",
    "SECTOR_BYTES",
    "PmemDisk",
    "NvmeofDisk",
    "SsdDisk",
]
