"""The guest kernel's memory manager.

:class:`GuestMemoryManager` is what runs *inside* a swap-configured VM:
a frame pool the size of the VM's DRAM, a page table, active/inactive
LRU lists, the swap subsystem over a block device, kswapd, and a
file-page cache over a data disk.  The pmbench / Graph500 / MongoDB
drivers talk to it through three calls:

* ``is_resident(vaddr)`` + ``touch(vaddr)`` — the fast path (a TLB/PT
  hit costs no simulation events),
* ``access_fault(vaddr, is_write, ...)`` — the fault path, a simulation
  generator,
* ``read_file_page(...)`` — file-backed I/O through the page cache.

A FluidMem-backed VM does **not** use this class's reclaim machinery:
its guest kernel sees abundant "physical" memory and the FluidMem
monitor on the host does the evicting.
"""

from __future__ import annotations

import random
from typing import Dict, Generator, Optional, Tuple

from ..blockdev import BlockDevice, SECTOR_BYTES
from ..errors import KernelError
from ..mem import (
    PAGE_SIZE,
    FrameAllocator,
    Page,
    PageKind,
    PageTable,
)
from ..sim import CounterSet, Environment, LatencyRecorder
from .kswapd import Kswapd
from .latency import SwapPathLatency
from .lru import ActiveInactiveLists
from .swap import SwapSubsystem

__all__ = ["GuestMemoryManager", "FILE_REGION_BASE"]

#: Synthetic virtual-address region where file-cache pages are mapped.
FILE_REGION_BASE = 1 << 44
#: Address stride separating files in the synthetic file region.
FILE_STRIDE = 1 << 36


class GuestMemoryManager:
    """Guest-kernel MM: frames, page table, LRU, swap, page cache."""

    def __init__(
        self,
        env: Environment,
        rng: random.Random,
        dram_bytes: int,
        latency: Optional[SwapPathLatency] = None,
        swap_device: Optional[BlockDevice] = None,
        data_disk: Optional[BlockDevice] = None,
        swappiness: int = 60,
        kswapd_low: float = 0.04,
        kswapd_high: float = 0.08,
        kswapd_batch: int = 64,
    ) -> None:
        if not 0 <= swappiness <= 100:
            raise KernelError(f"swappiness must be in [0,100]: {swappiness}")
        self.env = env
        self._rng = rng
        self.latency = latency or SwapPathLatency()
        self.frames = FrameAllocator.for_bytes(dram_bytes)
        self.table = PageTable("guest")
        self.lru = ActiveInactiveLists()
        self.swap = (
            SwapSubsystem(env, swap_device, self.latency)
            if swap_device is not None
            else None
        )
        self.data_disk = data_disk
        self.swappiness = swappiness
        self.kswapd = Kswapd(
            env,
            self,
            low_watermark=kswapd_low,
            high_watermark=kswapd_high,
            batch_pages=kswapd_batch,
        )
        #: (file_id, page_index) of file pages currently in the cache.
        self._file_pages: Dict[int, Tuple[int, int]] = {}
        #: Workingset shadow entries: vaddr -> eviction counter at the
        #: time the page was reclaimed (mm/workingset.c).
        self._shadow: Dict[int, int] = {}
        self._eviction_counter = 0
        self.counters = CounterSet()
        self.fault_latency = LatencyRecorder("guest.fault", max_samples=200_000)
        self._reclaiming = False

    # -- fast-path queries ----------------------------------------------------

    @property
    def free_ratio(self) -> float:
        return self.frames.free_frames / self.frames.total_frames

    @property
    def resident_pages(self) -> int:
        return self.table.present_pages

    def is_resident(self, vaddr: int) -> bool:
        return vaddr in self.table

    def touch(self, vaddr: int, is_write: bool = False) -> None:
        """Record an access to a resident page (sets referenced/dirty)."""
        page = self.table.entry(vaddr).page
        if is_write:
            page.write()
        else:
            page.read()

    # -- the fault path ----------------------------------------------------------

    def access_fault(
        self,
        vaddr: int,
        is_write: bool,
        kind: PageKind = PageKind.ANONYMOUS,
        mlocked: bool = False,
    ) -> Generator:
        """Handle a fault on a non-resident page; returns the Page."""
        start = self.env.now
        entry_us = (
            self.latency.fault_entry_us
            + self.latency.virtualization_overhead_us
        )
        if not self.env.try_advance(entry_us):
            yield self.env.timeout(entry_us)

        if self.swap is not None and self.swap.has_entry(vaddr):
            page, frame, prefetched = yield from self.swap.swap_in(
                vaddr, page_cluster=self.latency.page_cluster
            )
            if frame is None:
                frame = yield from self._allocate_frame()
            self._map_prefetched(prefetched)
            self.counters.incr("major_faults")
        else:
            # Anonymous (or first-touch) minor fault: zero-fill.
            minor_us = self.latency.minor_fault_us
            if not self.env.try_advance(minor_us):
                yield self.env.timeout(minor_us)
            frame = yield from self._allocate_frame()
            page = Page(vaddr=vaddr, kind=kind, mlocked=mlocked)
            self.counters.incr("minor_faults")

        self.table.map(vaddr, frame, page)
        if self._reclaimable(page):
            self._lru_insert_with_workingset(page)
        if is_write:
            page.write()
        else:
            page.read()
        self._check_watermarks()
        self.fault_latency.record(self.env.now - start)
        return page

    def _lru_insert_with_workingset(self, page: Page) -> None:
        """Insert with Linux's workingset refault detection: a page
        whose refault distance is within the LRU's reach goes straight
        to the active list, protecting a thrashing hot set."""
        evicted_at = self._shadow.pop(page.vaddr, None)
        if evicted_at is not None:
            distance = self._eviction_counter - evicted_at
            if distance <= len(self.lru):
                self.lru.insert_active(page)
                self.counters.incr("workingset_activations")
                return
        self.lru.insert(page)

    def _map_prefetched(self, prefetched) -> None:
        """Map readahead pages opportunistically (no reclaim on their
        behalf: a prefetch is dropped when no frame is free)."""
        for vaddr in prefetched:
            if self.is_resident(vaddr):
                continue
            # Throttle: never let speculative pages eat the emergency
            # reserve (the kernel scales its readahead window the same
            # way) — otherwise every fault ends in direct reclaim.
            if self.free_ratio <= self.kswapd.low_watermark:
                self._check_watermarks()
                return
            frame = self.frames.try_allocate()
            if frame is None:
                return
            page = self.swap.take_prefetched(vaddr)
            self.table.map(vaddr, frame, page)
            if self._reclaimable(page):
                self.lru.insert(page)
            self.counters.incr("prefetched_mapped")

    def _reclaimable(self, page: Page) -> bool:
        """Whether the page may appear on the reclaim LRU lists.

        Kernel and unevictable/mlocked pages never do.  Anonymous pages
        only do when swap is configured — without swap the kernel has
        nowhere to put them (paper §II).  File-backed pages always do
        (they can be dropped or written back to their file).
        """
        if page.kind in (PageKind.KERNEL, PageKind.UNEVICTABLE):
            return False
        if page.mlocked:
            return False
        if page.kind is PageKind.ANONYMOUS:
            return self.swap is not None
        return True  # FILE_BACKED

    def _allocate_frame(self) -> Generator:
        """Get a free frame, entering direct reclaim if none are left."""
        frame = self.frames.try_allocate()
        attempts = 0
        while frame is None:
            attempts += 1
            if attempts > 50:
                raise KernelError(
                    "direct reclaim made no progress (guest OOM)"
                )
            self.counters.incr("direct_reclaims")
            self.kswapd.kick()
            yield self.env.timeout(self.latency.direct_reclaim_us)
            yield from self.reclaim_pages(32)
            frame = self.frames.try_allocate()
        return frame

    def _check_watermarks(self) -> None:
        if self.kswapd.should_wake():
            if not self.kswapd.running:
                self.kswapd.start()
            self.kswapd.kick()

    # -- reclaim ------------------------------------------------------------------

    def reclaim_pages(self, count: int) -> Generator:
        """Reclaim up to ``count`` pages; returns how many were freed."""
        victims = self.lru.select_victims(count)
        freed = 0
        write_batch = []
        for page in victims:
            if page.kind is PageKind.ANONYMOUS:
                if self.swappiness < 100 and self._rng.random() < (
                    (100 - self.swappiness) / 200.0
                ):
                    # Low swappiness: give anonymous pages extra grace.
                    self.lru.insert(page)
                    continue
                write_batch.append(page)
            else:
                freed += yield from self._reclaim_file_page(page)
        if write_batch:
            for page in write_batch:
                self._eviction_counter += 1
                self._shadow[page.vaddr] = self._eviction_counter
            yield from self.swap.swap_out_batch(
                write_batch, self.table, self.frames
            )
            freed += len(write_batch)
        self.counters.incr("reclaimed", by=freed)
        self._prune_shadow()
        return freed

    def _prune_shadow(self) -> None:
        """Bound the shadow table: stale entries can never activate."""
        limit = 8 * self.frames.total_frames
        if len(self._shadow) <= limit:
            return
        horizon = self._eviction_counter - 2 * self.frames.total_frames
        self._shadow = {
            vaddr: epoch
            for vaddr, epoch in self._shadow.items()
            if epoch >= horizon
        }

    def _reclaim_file_page(self, page: Page) -> Generator:
        """Drop (clean) or write back (dirty) a file-cache page."""
        self._eviction_counter += 1
        self._shadow[page.vaddr] = self._eviction_counter
        pte = self.table.unmap(page.vaddr)
        if page.dirty and self.data_disk is not None:
            sector = self._file_pages.get(page.vaddr, (0, 0))[1] \
                % self.data_disk.num_sectors
            yield from self.data_disk.write(sector, SECTOR_BYTES)
            self.counters.incr("file_writeback")
        else:
            self.counters.incr("file_dropped")
        self._file_pages.pop(page.vaddr, None)
        self.frames.free(pte.frame)
        return 1

    # -- file-backed pages (the page cache) ------------------------------------------

    @staticmethod
    def file_vaddr(file_id: int, page_index: int) -> int:
        """Synthetic mapping address for a file page."""
        if file_id < 0 or page_index < 0:
            raise KernelError("file_id and page_index must be >= 0")
        if page_index >= FILE_STRIDE // PAGE_SIZE:
            raise KernelError(f"page_index {page_index} too large")
        return FILE_REGION_BASE + file_id * FILE_STRIDE + page_index * PAGE_SIZE

    def is_file_page_cached(self, file_id: int, page_index: int) -> bool:
        return self.is_resident(self.file_vaddr(file_id, page_index))

    def read_file_page(
        self, file_id: int, page_index: int, is_write: bool = False
    ) -> Generator:
        """Read a file page through the cache; returns True on a hit."""
        if self.data_disk is None:
            raise KernelError("no data disk configured")
        vaddr = self.file_vaddr(file_id, page_index)
        if self.is_resident(vaddr):
            self.touch(vaddr, is_write)
            self.counters.incr("pagecache_hits")
            return True

        yield self.env.timeout(self.latency.fault_entry_us)
        frame = yield from self._allocate_frame()
        sector = page_index % self.data_disk.num_sectors
        yield from self.data_disk.read(sector, SECTOR_BYTES)
        page = Page(vaddr=vaddr, kind=PageKind.FILE_BACKED)
        self.table.map(vaddr, frame, page)
        self._lru_insert_with_workingset(page)
        self._file_pages[vaddr] = (file_id, page_index)
        if is_write:
            page.write()
        else:
            page.read()
        self._check_watermarks()
        self.counters.incr("pagecache_misses")
        return False

    def read_file_extent(
        self, file_id: int, first_page: int, count: int
    ) -> Generator:
        """Read ``count`` contiguous file pages with one device request
        (a filesystem extent / WiredTiger leaf).  Returns True when the
        whole extent was already cached."""
        if self.data_disk is None:
            raise KernelError("no data disk configured")
        if count < 1:
            raise KernelError(f"extent must be >= 1 page, got {count}")
        missing = [
            index
            for index in range(first_page, first_page + count)
            if not self.is_resident(self.file_vaddr(file_id, index))
        ]
        for index in range(first_page, first_page + count):
            vaddr = self.file_vaddr(file_id, index)
            if self.is_resident(vaddr):
                self.touch(vaddr)
        if not missing:
            self.counters.incr("pagecache_hits")
            return True

        yield self.env.timeout(self.latency.fault_entry_us)
        sector = missing[0] % self.data_disk.num_sectors
        nbytes = min(
            len(missing) * SECTOR_BYTES,
            (self.data_disk.num_sectors - sector) * SECTOR_BYTES,
        )
        yield from self.data_disk.read(sector, nbytes)
        for index in missing:
            vaddr = self.file_vaddr(file_id, index)
            frame = yield from self._allocate_frame()
            page = Page(vaddr=vaddr, kind=PageKind.FILE_BACKED)
            self.table.map(vaddr, frame, page)
            self._lru_insert_with_workingset(page)
            self._file_pages[vaddr] = (file_id, index)
            page.read()
        self._check_watermarks()
        self.counters.incr("pagecache_misses")
        return False

    # -- instantaneous population (boot footprints, test setup) ------------------------

    def populate_resident(
        self,
        vaddr: int,
        kind: PageKind = PageKind.ANONYMOUS,
        mlocked: bool = False,
        dirty: bool = False,
    ) -> Page:
        """Map a page immediately, charging no simulated time.

        Used to construct a VM's boot footprint (Table III: ~81042 pages
        after startup) without simulating the whole boot.
        """
        frame = self.frames.try_allocate()
        if frame is None:
            raise KernelError("no free frames for populate_resident")
        page = Page(vaddr=vaddr, kind=kind, mlocked=mlocked)
        if dirty:
            page.dirty = True
        self.table.map(vaddr, frame, page)
        if self._reclaimable(page):
            self.lru.insert(page)
        return page

    def __repr__(self) -> str:
        return (
            f"<GuestMemoryManager resident={self.resident_pages}p "
            f"free={self.frames.free_frames}f "
            f"swap={'on' if self.swap else 'off'}>"
        )
