"""Simulated Linux kernel subsystems.

Two fault-handling worlds live here:

* the **swap world** (:class:`GuestMemoryManager` + :class:`SwapSubsystem`
  + :class:`Kswapd` + :class:`ActiveInactiveLists`) — partial
  disaggregation, the paper's comparison point;
* the **userfaultfd mechanism** (:class:`Userfaultfd` + :class:`UffdOps`)
  — the hook FluidMem (:mod:`repro.core`) builds full disaggregation on.
"""

from .kswapd import Kswapd
from .latency import SwapPathLatency, UffdLatency
from .lru import ActiveInactiveLists
from .mm import FILE_REGION_BASE, GuestMemoryManager
from .swap import SwapSlotMap, SwapSubsystem
from .uffd import UffdFault, UffdOps, UffdRegion, Userfaultfd

__all__ = [
    "UffdLatency",
    "SwapPathLatency",
    "Userfaultfd",
    "UffdOps",
    "UffdFault",
    "UffdRegion",
    "ActiveInactiveLists",
    "SwapSubsystem",
    "SwapSlotMap",
    "Kswapd",
    "GuestMemoryManager",
    "FILE_REGION_BASE",
]
