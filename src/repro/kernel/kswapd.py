"""kswapd: the asynchronous reclaim daemon.

Woken when free memory dips below the low watermark; reclaims in batches
until the high watermark is restored.  Because it runs *asynchronously*,
the fault critical path usually only pays for the swap-in read — the
same decoupling the paper credits the kernel with ("kernel threads
decouple eviction from the read critical path", §V-B) and that FluidMem
mirrors with its write-back thread.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim import Environment, Event

__all__ = ["Kswapd"]


class Kswapd:
    """Watermark-driven background reclaim over a GuestMemoryManager."""

    def __init__(
        self,
        env: Environment,
        mm: "GuestMemoryManager",  # noqa: F821 - cycle broken by string
        low_watermark: float = 0.04,
        high_watermark: float = 0.08,
        batch_pages: int = 64,
    ) -> None:
        if not 0.0 < low_watermark < high_watermark < 1.0:
            raise ValueError(
                "need 0 < low < high < 1, got "
                f"low={low_watermark} high={high_watermark}"
            )
        self.env = env
        self.mm = mm
        self.low_watermark = low_watermark
        self.high_watermark = high_watermark
        self.batch_pages = batch_pages
        self._wakeup: Optional[Event] = None
        self._process = None
        self.reclaim_rounds = 0

    def start(self) -> None:
        if self._process is not None:
            return
        self._process = self.env.process(self._run())

    @property
    def running(self) -> bool:
        return self._process is not None and self._process.is_alive

    def should_wake(self) -> bool:
        return self.mm.free_ratio < self.low_watermark

    def kick(self) -> None:
        """Wake the daemon (called from the allocation path)."""
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _run(self) -> Generator:
        while True:
            # Always sleep until kicked: a daemon that retried on a
            # timer would keep the event loop alive forever when memory
            # is full of unreclaimable pages.
            self._wakeup = self.env.event()
            yield self._wakeup
            self._wakeup = None
            while self.mm.free_ratio < self.high_watermark:
                reclaimed = yield from self.mm.reclaim_pages(
                    self.batch_pages
                )
                self.reclaim_rounds += 1
                if reclaimed == 0:
                    # Nothing reclaimable now; wait for the next kick.
                    break
