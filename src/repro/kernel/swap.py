"""The guest swap subsystem.

Swap is the paper's foil: it provides *partial* disaggregation because
only anonymous, non-mlocked pages may use it (§II).  The model here
enforces exactly that restriction and reproduces the structure of the
swap-in/out paths:

* a slot map over a block device (the swap "device": pmem, NVMeoF, SSD),
* a swap cache so a page being written out — or recently read in — can
  satisfy a fault without device I/O (one of the fast plateaus in the
  swap CDFs of Fig. 3),
* swap-out that frees the frame only after the write completes.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from ..blockdev import BlockDevice, SECTOR_BYTES
from ..errors import OutOfSwapError, SwapError
from ..mem import FrameAllocator, Page, PageTable
from ..sim import CounterSet, Environment
from .latency import SwapPathLatency

__all__ = ["SwapSlotMap", "SwapSubsystem"]


class SwapSlotMap:
    """Slot allocation over the swap block device."""

    def __init__(self, device: BlockDevice) -> None:
        self.device = device
        self.total_slots = device.num_sectors
        self._free: List[int] = list(range(self.total_slots - 1, -1, -1))
        self._used: set = set()

    @property
    def free_slots(self) -> int:
        return len(self._free)

    @property
    def used_slots(self) -> int:
        return len(self._used)

    def allocate(self) -> int:
        if not self._free:
            raise OutOfSwapError(
                f"swap device full ({self.total_slots} slots)"
            )
        slot = self._free.pop()
        self._used.add(slot)
        return slot

    def release(self, slot: int) -> None:
        try:
            self._used.remove(slot)
        except KeyError:
            raise SwapError(f"slot {slot} is not allocated") from None
        self._free.append(slot)


class SwapSubsystem:
    """Swap entries, swap cache, and the in/out I/O paths."""

    def __init__(
        self,
        env: Environment,
        device: BlockDevice,
        latency: SwapPathLatency,
    ) -> None:
        self.env = env
        self.slots = SwapSlotMap(device)
        self.device = device
        self.latency = latency
        #: vaddr -> slot, for pages currently swapped out.
        self._entries: Dict[int, int] = {}
        #: slot -> vaddr, for readahead over adjacent slots.
        self._slot_vaddr: Dict[int, int] = {}
        #: vaddr -> (Page, frame) for pages with a swap entry whose
        #: contents are still in memory: writeback in flight.  The frame
        #: is not freed until the write completes.
        self._swap_cache: Dict[int, tuple] = {}
        self.counters = CounterSet()

    # -- queries -----------------------------------------------------------

    def has_entry(self, vaddr: int) -> bool:
        return vaddr in self._entries

    def in_swap_cache(self, vaddr: int) -> bool:
        return vaddr in self._swap_cache

    @property
    def entries_count(self) -> int:
        return len(self._entries)

    # -- swap-out (called by kswapd / direct reclaim) -------------------------

    def swap_out(
        self,
        page: Page,
        table: PageTable,
        frames: FrameAllocator,
    ) -> Generator:
        """Write ``page`` to swap and free its frame.

        Refuses non-swappable pages — this is swap's fundamental
        limitation (paper §II): file-backed, kernel, unevictable, and
        mlocked pages cannot use swap space.
        """
        if not page.evictable_by_swap:
            raise SwapError(
                f"{page!r} ({page.kind.value}) cannot be swapped out"
            )
        if page.vaddr in self._entries:
            raise SwapError(f"{page!r} already has a swap entry")
        slot = self.slots.allocate()
        # Unmap first; until the write completes the page stays in the
        # swap cache, so a racing fault is a cache hit, not device I/O.
        pte = table.unmap(page.vaddr)
        self._entries[page.vaddr] = slot
        self._slot_vaddr[slot] = page.vaddr
        self._swap_cache[page.vaddr] = (page, pte.frame)
        yield from self.device.write(slot, SECTOR_BYTES)
        # Write durable: drop the in-memory copy, free the frame.
        cached = self._swap_cache.get(page.vaddr)
        if cached is not None and cached[0] is page:
            del self._swap_cache[page.vaddr]
            frames.free(pte.frame)
            self.counters.incr("swapped_out")
        # else: a fault re-took the page mid-writeback (handled there).

    def swap_out_batch(
        self,
        pages: List[Page],
        table: PageTable,
        frames: FrameAllocator,
    ) -> Generator:
        """Write a batch of pages in one device request.

        kswapd submits reclaim writeback in batches; with sequential
        slot allocation the run is contiguous on the device, so the
        whole batch costs little more than a single write.  Keeping the
        queue clear of per-page writes is what lets concurrent swap-in
        reads proceed promptly.
        """
        if not pages:
            return
        entries = []
        first_slot = None
        for page in pages:
            if not page.evictable_by_swap:
                raise SwapError(
                    f"{page!r} ({page.kind.value}) cannot be swapped out"
                )
            if page.vaddr in self._entries:
                raise SwapError(f"{page!r} already has a swap entry")
            slot = self.slots.allocate()
            if first_slot is None:
                first_slot = slot
            pte = table.unmap(page.vaddr)
            self._entries[page.vaddr] = slot
            self._slot_vaddr[slot] = page.vaddr
            self._swap_cache[page.vaddr] = (page, pte.frame)
            entries.append((page, pte.frame))
        # Slots are usually contiguous (sequential allocation); when
        # frees have scattered them, clamp the run so the single-request
        # cost model stays within device bounds.
        sector = min(
            first_slot, self.device.num_sectors - len(entries)
        )
        yield from self.device.write(sector, SECTOR_BYTES * len(entries))
        for page, frame in entries:
            cached = self._swap_cache.get(page.vaddr)
            if cached is not None and cached[0] is page:
                del self._swap_cache[page.vaddr]
                frames.free(frame)
                self.counters.incr("swapped_out")
            # else: stolen back by a racing fault mid-writeback.

    # -- swap-in (the fault path) ------------------------------------------------

    def swap_in(self, vaddr: int, page_cluster: int = 1) -> Generator:
        """Resolve a fault on a swapped-out page.

        Returns ``(page, frame_or_none, prefetched)``: when the page was
        still in the swap cache (write-back in flight) its original
        frame comes back with it and no device I/O happens; otherwise
        the caller must allocate a frame for the freshly read page.

        ``page_cluster`` > 1 enables swap readahead (the kernel's
        vm.page-cluster): entries in the following adjacent slots ride
        along in the same device request and come back in
        ``prefetched`` as ``[(vaddr, Page), ...]``.  FluidMem has no
        equivalent — the paper lists prefetching as future work — and
        this is precisely the edge that lets swap-to-DRAM beat
        FluidMem-to-DRAM at large working sets (Fig. 4c/d).
        """
        if page_cluster < 1:
            raise SwapError(f"page_cluster must be >= 1: {page_cluster}")
        slot = self._entries.get(vaddr)
        if slot is None:
            raise SwapError(f"no swap entry for {vaddr:#x}")

        env = self.env
        lookup_us = self.latency.swap_cache_lookup_us
        if not env.try_advance(lookup_us):
            yield env.timeout(lookup_us)
        cached = self._swap_cache.pop(vaddr, None)
        if cached is not None:
            # The frame was never freed; just restore the mapping.
            hit_us = self.latency.swap_cache_hit_us
            if not env.try_advance(hit_us):
                yield env.timeout(hit_us)
            self._forget(vaddr, slot)
            self.counters.incr("swap_cache_hits")
            page, frame = cached
            return page, frame, []

        # Build the readahead run: consecutive allocated slots whose
        # pages are on the device (not mid-writeback).
        run_vaddrs = [vaddr]
        for next_slot in range(slot + 1, slot + page_cluster):
            next_vaddr = self._slot_vaddr.get(next_slot)
            if next_vaddr is None or next_vaddr in self._swap_cache:
                break
            run_vaddrs.append(next_vaddr)

        submit_us = self.latency.block_submit_us
        if not env.try_advance(submit_us):
            yield env.timeout(submit_us)
        yield from self.device.read(slot, SECTOR_BYTES * len(run_vaddrs))
        completion_us = self.latency.completion_us
        if not env.try_advance(completion_us):
            yield env.timeout(completion_us)

        self._forget(vaddr, slot)
        page = Page(vaddr=vaddr)
        page.dirty = True  # swapped-in anonymous pages are dirty again
        self.counters.incr("swapped_in")
        if len(run_vaddrs) > 1:
            self.counters.incr("readahead_reads", by=len(run_vaddrs) - 1)
        # The trailing run entries were read but keep their swap
        # entries until the caller takes them (take_prefetched); an
        # untaken prefetch is simply a wasted read, never data loss.
        return page, None, run_vaddrs[1:]

    def take_prefetched(self, vaddr: int) -> Page:
        """Claim a page whose data a readahead just pulled in."""
        slot = self._entries.get(vaddr)
        if slot is None:
            raise SwapError(f"no swap entry for prefetched {vaddr:#x}")
        self._forget(vaddr, slot)
        page = Page(vaddr=vaddr)
        page.dirty = True
        self.counters.incr("prefetch_taken")
        return page

    def _forget(self, vaddr: int, slot: int) -> None:
        del self._entries[vaddr]
        self._slot_vaddr.pop(slot, None)
        self.slots.release(slot)

    def drop_entry(self, vaddr: int) -> None:
        """Discard a swap entry without reading it (process exit)."""
        slot = self._entries.pop(vaddr, None)
        if slot is None:
            raise SwapError(f"no swap entry for {vaddr:#x}")
        self._swap_cache.pop(vaddr, None)
        self._slot_vaddr.pop(slot, None)
        self.slots.release(slot)
