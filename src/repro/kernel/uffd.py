"""userfaultfd emulation.

The real mechanism (Linux >= 4.3, paper §III): a process registers
address ranges on a file descriptor; the kernel turns any fault on a
missing page in those ranges into an *event* readable from the fd while
the faulting thread sleeps; a user-space handler resolves the fault with
ioctls (``UFFDIO_ZEROPAGE``, ``UFFDIO_COPY``, the paper's proposed
``UFFDIO_REMAP``) and wakes the thread.

Here :class:`Userfaultfd` is the kernel side (region registry + event
queue) and :class:`UffdOps` is the ioctl surface the monitor calls.  The
faulting vCPU blocks on ``fault.resolved``; the monitor blocks on
``uffd.events.get()`` — the same rendezvous as the real fd.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional

from ..errors import UffdError, UffdRegionError
from ..mem import (
    PAGE_SIZE,
    FrameAllocator,
    MemoryRegion,
    Page,
    PageKind,
    PageTable,
    is_page_aligned,
)
from ..sim import CounterSet, Environment, Event, Store
from .latency import UffdLatency

__all__ = ["UffdFault", "UffdRegion", "Userfaultfd", "UffdOps"]


class UffdFault:
    """One fault event: address + origin, plus the wake-up rendezvous."""

    __slots__ = ("addr", "pid", "is_write", "raised_at", "resolved", "region")

    def __init__(
        self,
        env: Environment,
        addr: int,
        pid: int,
        is_write: bool,
        region: "UffdRegion",
    ) -> None:
        self.addr = addr
        self.pid = pid
        self.is_write = is_write
        self.raised_at = env.now
        #: The faulting thread sleeps on this; UFFDIO_WAKE fires it.
        self.resolved: Event = env.event()
        self.region = region

    def __repr__(self) -> str:
        rw = "W" if self.is_write else "R"
        return f"<UffdFault {self.addr:#x} pid={self.pid} {rw}>"


class UffdRegion:
    """A registered range belonging to one process (QEMU instance)."""

    def __init__(
        self,
        region: MemoryRegion,
        pid: int,
        page_table: PageTable,
    ) -> None:
        self.region = region
        self.pid = pid
        self.page_table = page_table
        self.valid = True

    def __contains__(self, addr: int) -> bool:
        return self.valid and addr in self.region

    def __repr__(self) -> str:
        state = "valid" if self.valid else "invalid"
        return f"<UffdRegion pid={self.pid} {self.region!r} {state}>"


class Userfaultfd:
    """Kernel side: registered regions and the event queue (the "fd")."""

    def __init__(
        self,
        env: Environment,
        latency: UffdLatency,
        rng: random.Random,
    ) -> None:
        self.env = env
        self.latency = latency
        self._rng = rng
        #: Monitor reads fault events from here (epoll on the fd).
        self.events: Store = Store(env)
        self._regions: List[UffdRegion] = []
        self.counters = CounterSet()

    # -- registration (paper §IV: done by the QEMU wrapper library) ---------

    def register(
        self, region: MemoryRegion, pid: int, page_table: PageTable
    ) -> UffdRegion:
        """Register a range; faults inside it become events."""
        for existing in self._regions:
            if existing.valid and existing.pid == pid and \
                    existing.region.overlaps(region):
                raise UffdRegionError(
                    f"range {region!r} overlaps {existing!r}"
                )
        handle = UffdRegion(region, pid, page_table)
        self._regions.append(handle)
        self.counters.incr("registrations")
        return handle

    def unregister(self, handle: UffdRegion) -> None:
        """Invalidate a region (VM shut down)."""
        if not handle.valid:
            raise UffdRegionError(f"{handle!r} already unregistered")
        handle.valid = False
        self.counters.incr("unregistrations")

    def find_region(self, addr: int, pid: int) -> Optional[UffdRegion]:
        for handle in self._regions:
            if handle.pid == pid and addr in handle:
                return handle
        return None

    @property
    def registered_regions(self) -> List[UffdRegion]:
        return [handle for handle in self._regions if handle.valid]

    # -- fault side ---------------------------------------------------------

    def raise_fault(self, addr: int, pid: int, is_write: bool) -> UffdFault:
        """Kernel fault handler found a missing page in a registered range.

        Returns the fault object; the caller (vCPU model) must
        ``yield fault.resolved``.  Delivery to the monitor costs
        ``event_deliver_us`` and happens asynchronously, like the real
        fd write + epoll wake-up.
        """
        if (addr & (PAGE_SIZE - 1) or addr >> 64) and \
                not is_page_aligned(addr):
            raise UffdError(f"fault address {addr:#x} not page aligned")
        region = self.find_region(addr, pid)
        if region is None:
            raise UffdError(
                f"no registered region for {addr:#x} (pid {pid})"
            )
        fault = UffdFault(self.env, addr, pid, is_write, region)
        self.counters.incr("faults")
        # Fast path: when the delivery delay settles as a pure clock
        # bump, enqueue synchronously — no delivery process, no put
        # event.  The caller parks on ``fault.resolved`` either way, so
        # the monitor still only sees the fault via the queue.
        if self.env.try_advance(self.latency.event_deliver_us):
            self.events.put_nowait(fault)
        else:
            self.env.process(self._deliver(fault))
        return fault

    def _deliver(self, fault: UffdFault) -> Generator:
        deliver_us = self.latency.event_deliver_us
        if not self.env.try_advance(deliver_us):
            yield self.env.timeout(deliver_us)
        yield self.events.put(fault)


class UffdOps:
    """The ioctl surface the monitor drives, with Table I costs."""

    def __init__(
        self,
        env: Environment,
        latency: UffdLatency,
        rng: random.Random,
        frames: FrameAllocator,
    ) -> None:
        self.env = env
        self.latency = latency
        self._rng = rng
        self.frames = frames
        self.counters = CounterSet()

    # The try_* variants are non-generator mirrors of the ioctls for the
    # monitor's fault hot loop: they draw the same latency sample, and
    # either settle it via Environment.try_advance (returning the result
    # with no event machinery at all) or hand the pre-drawn cost back so
    # the caller can fall into the generator version via ``_cost=`` —
    # the RNG stream is part of the determinism contract and must never
    # see a redraw.  The finish_* helpers apply just the state mutation:
    # a caller that already paid the pre-drawn cost (``yield
    # env.timeout(cost)`` after a failed try_*) calls them directly,
    # skipping the generator machinery of the full ioctl.

    def finish_zeropage(
        self, table: PageTable, addr: int, kind: PageKind = PageKind.ANONYMOUS
    ) -> Page:
        """Zeropage state mutation; the cost must already be paid."""
        frame = self.frames.allocate()
        page = Page(vaddr=addr, kind=kind)
        table.map(addr, frame, page)
        self.counters.incr("zeropage")
        return page

    def finish_copy(
        self,
        table: PageTable,
        addr: int,
        page: Page,
        skip_if_present: bool = False,
    ) -> Page:
        """Copy state mutation; the cost must already be paid."""
        if skip_if_present:
            existing = table.lookup(addr)
            if existing is not None:
                self.counters.incr("copy_eexist")
                return existing.page
        frame = self.frames.allocate()
        table.map(addr, frame, page)
        self.counters.incr("copy")
        return page

    def finish_remap_out(
        self,
        table: PageTable,
        addr: int,
        dst_table: PageTable,
        dst_addr: int,
    ) -> Page:
        """Remap state mutation; the cost must already be paid."""
        pte = table.remap_to(addr, dst_table, dst_addr)
        self.counters.incr("remap")
        return pte.page

    def try_zeropage(
        self, table: PageTable, addr: int, kind: PageKind = PageKind.ANONYMOUS
    ):
        """Fast UFFDIO_ZEROPAGE: ``(done, page_or_none, cost)``."""
        cost = self.latency.sample_zeropage(self._rng)
        if not self.env.try_advance(cost):
            return False, None, cost
        return True, self.finish_zeropage(table, addr, kind), cost

    def zeropage(
        self,
        table: PageTable,
        addr: int,
        kind: PageKind = PageKind.ANONYMOUS,
        _cost: Optional[float] = None,
    ) -> Generator:
        """UFFDIO_ZEROPAGE: resolve a first touch with the zero page.

        Simplification: we charge a frame immediately rather than
        modelling the shared copy-on-write zero page; FluidMem's LRU
        accounting counts the page as resident either way.
        """
        cost = self.latency.sample_zeropage(self._rng) if _cost is None \
            else _cost
        if not self.env.try_advance(cost):
            yield self.env.timeout(cost)
        return self.finish_zeropage(table, addr, kind)

    def try_copy(
        self,
        table: PageTable,
        addr: int,
        page: Page,
        skip_if_present: bool = False,
    ):
        """Fast UFFDIO_COPY: ``(done, page_or_none, cost)``."""
        cost = self.latency.sample_copy(self._rng)
        if not self.env.try_advance(cost):
            return False, None, cost
        return True, self.finish_copy(table, addr, page, skip_if_present), cost

    def copy(
        self,
        table: PageTable,
        addr: int,
        page: Page,
        skip_if_present: bool = False,
        _cost: Optional[float] = None,
    ) -> Generator:
        """UFFDIO_COPY: place ``page``'s contents at ``addr`` and map it.

        ``skip_if_present`` mirrors the real ioctl's -EEXIST handling:
        when a concurrent resolver (e.g. a prefetch completion) mapped
        the address first, return the winner's page instead of failing.
        """
        cost = self.latency.sample_copy(self._rng) if _cost is None \
            else _cost
        if not self.env.try_advance(cost):
            yield self.env.timeout(cost)
        return self.finish_copy(table, addr, page, skip_if_present)

    def try_remap_out(
        self,
        table: PageTable,
        addr: int,
        dst_table: PageTable,
        dst_addr: int,
        interleaved: bool = False,
    ):
        """Fast UFFDIO_REMAP: ``(done, page_or_none, cost)``."""
        cost = self.latency.sample_remap(self._rng, interleaved)
        if not self.env.try_advance(cost):
            return False, None, cost
        return True, self.finish_remap_out(table, addr, dst_table, dst_addr), \
            cost

    def remap_out(
        self,
        table: PageTable,
        addr: int,
        dst_table: PageTable,
        dst_addr: int,
        interleaved: bool = False,
        _cost: Optional[float] = None,
    ) -> Generator:
        """UFFDIO_REMAP: move the page out of the VM by PTE rewrite.

        Zero-copy — the frame and the :class:`Page` object move to the
        destination table.  ``interleaved=True`` models the §V-B
        optimization where the call runs while the vCPU is already
        suspended, avoiding most of the TLB-shootdown IPI cost.
        """
        cost = self.latency.sample_remap(self._rng, interleaved) \
            if _cost is None else _cost
        if not self.env.try_advance(cost):
            yield self.env.timeout(cost)
        return self.finish_remap_out(table, addr, dst_table, dst_addr)

    def try_wake(self, fault: UffdFault) -> bool:
        """Fast UFFDIO_WAKE; False when the event machinery is needed."""
        if not self.env.try_advance(self.latency.wake_us):
            return False
        if fault.resolved.triggered:
            raise UffdError(f"{fault!r} already woken")
        fault.resolved.succeed()
        self.counters.incr("wake")
        return True

    def wake(self, fault: UffdFault) -> Generator:
        """UFFDIO_WAKE: resume the faulting vCPU thread."""
        wake_us = self.latency.wake_us
        if not self.env.try_advance(wake_us):
            yield self.env.timeout(wake_us)
        if fault.resolved.triggered:
            raise UffdError(f"{fault!r} already woken")
        fault.resolved.succeed()
        self.counters.incr("wake")
