"""Calibrated latency constants for kernel-path models.

Values come straight from the paper where it reports them:

* Table I gives the monitor-side costs, including the userfaultfd ioctls
  (UFFD_ZEROPAGE 2.61 µs avg, UFFD_COPY 3.89 µs, UFFD_REMAP 1.65 µs avg
  with an 18 µs 99th percentile caused by the TLB-flush IPI).
* §V-B: a synchronous UFFD_REMAP took 4–5 µs; interleaved under an
  in-flight network read it returned in ~2 µs.
* The swap-path stage costs are chosen so the end-to-end in-VM averages
  land on Figure 3 (26.34 / 41.73 / 106.56 µs for DRAM / NVMeoF / SSD
  swap) given the device models in :mod:`repro.blockdev.media`.

Everything is a frozen dataclass so experiment code can build variants
(``dataclasses.replace``) for ablations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["UffdLatency", "SwapPathLatency", "sample_positive"]


def sample_positive(rng: random.Random, mean: float, sigma: float,
                    floor: float = 0.05) -> float:
    """Gaussian sample truncated below at ``floor`` µs."""
    return max(floor, rng.gauss(mean, sigma))


@dataclass(frozen=True)
class UffdLatency:
    """userfaultfd mechanism costs (µs)."""

    #: UFFD_ZEROPAGE ioctl: install the shared zero page (Table I: 2.61).
    zeropage_mean: float = 2.61
    zeropage_sigma: float = 0.44

    #: UFFD_COPY ioctl: copy a 4 KB buffer into place (Table I: 3.89).
    copy_mean: float = 3.89
    copy_sigma: float = 0.77

    #: UFFD_REMAP: PTE rewrite cost without the IPI.
    remap_base_mean: float = 1.1
    remap_base_sigma: float = 0.3
    #: TLB-shootdown IPI when the vCPU may be running (§V-B: 4–5 µs total).
    remap_ipi_sync: float = 3.2
    #: Residual synchronization when the vCPU is already suspended
    #: (§V-B: the interleaved call returned after only 2 µs).
    remap_ipi_interleaved: float = 0.8
    #: Occasional long IPI (cross-socket, deep C-state): Table I's p99 18 µs.
    remap_tail_probability: float = 0.025
    remap_tail_us: float = 16.0

    #: Waking the halted vCPU thread (UFFDIO_WAKE + scheduler).
    wake_us: float = 1.5
    #: Kernel fault -> event readable by the monitor (fd write + epoll).
    event_deliver_us: float = 2.0
    #: Monitor-side read of the event + dispatch.
    event_dispatch_us: float = 0.7

    def sample_zeropage(self, rng: random.Random) -> float:
        return sample_positive(rng, self.zeropage_mean, self.zeropage_sigma)

    def sample_copy(self, rng: random.Random) -> float:
        return sample_positive(rng, self.copy_mean, self.copy_sigma)

    def sample_remap(self, rng: random.Random, interleaved: bool) -> float:
        base = sample_positive(
            rng, self.remap_base_mean, self.remap_base_sigma
        )
        ipi = (
            self.remap_ipi_interleaved if interleaved else self.remap_ipi_sync
        )
        if rng.random() < self.remap_tail_probability:
            ipi += self.remap_tail_us * rng.random()
        return base + ipi


@dataclass(frozen=True)
class SwapPathLatency:
    """Guest-kernel swap path stage costs (µs)."""

    #: Trap + VMA walk + swap-entry decode on fault entry.
    fault_entry_us: float = 1.3
    #: Extra cost when the faulting context is a KVM guest: VM exit,
    #: vCPU descheduling, EPT handling.  Zero for bare-metal processes.
    virtualization_overhead_us: float = 7.5
    #: Swap-cache radix-tree lookup.
    swap_cache_lookup_us: float = 0.6
    #: Hit in the swap cache (page still in memory): the "minor" path.
    swap_cache_hit_us: float = 2.0
    #: Allocate the bio, map the page, submit through virtio (cache=none).
    block_submit_us: float = 4.5
    #: Interrupt handling + PTE install + return to user.
    completion_us: float = 3.0
    #: Anonymous first-touch (zero-fill) minor fault.
    minor_fault_us: float = 2.2
    #: Synchronous direct-reclaim stall when free pages are exhausted
    #: and kswapd has fallen behind.
    direct_reclaim_us: float = 40.0
    #: Swap readahead window: 2^vm.page-cluster pages per swap-in (the
    #: kernel default page-cluster=3 gives 8).  Set to 1 to disable.
    page_cluster: int = 8
