"""The guest kernel's active/inactive page lists.

Linux reclaim keeps two LRU lists per type.  New pages enter the
inactive list; a page referenced again while inactive is promoted to the
active list instead of being reclaimed (second chance via the hardware
referenced bit).  kswapd refills the inactive list from the active tail
when it gets short.

This victim-selection quality is precisely why, in the paper's Figure
4c/d, *swap backed by DRAM slightly beats FluidMem backed by DRAM*: "the
kswapd process within the guest [is] better able to pick candidates for
eviction using the kernel's active/inactive list mechanism", while
FluidMem's user-space LRU never reorders (§V-A).  Reproducing that
crossover requires reproducing this mechanism.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from ..errors import KernelError
from ..mem import Page

__all__ = ["ActiveInactiveLists"]


class ActiveInactiveLists:
    """Two-list page aging with referenced-bit second chance."""

    def __init__(self) -> None:
        # OrderedDict ends: popitem(last=False) == oldest (tail of LRU).
        self._active: "OrderedDict[int, Page]" = OrderedDict()
        self._inactive: "OrderedDict[int, Page]" = OrderedDict()

    # -- membership -----------------------------------------------------------

    def insert(self, page: Page) -> None:
        """A newly mapped page enters the inactive list (MRU end)."""
        if page.vaddr in self._active or page.vaddr in self._inactive:
            raise KernelError(f"{page!r} is already on an LRU list")
        self._inactive[page.vaddr] = page

    def insert_active(self, page: Page) -> None:
        """Workingset refault: a quickly refaulting page is activated
        immediately (Linux's mm/workingset.c shadow-entry logic)."""
        if page.vaddr in self._active or page.vaddr in self._inactive:
            raise KernelError(f"{page!r} is already on an LRU list")
        self._active[page.vaddr] = page

    def remove(self, page: Page) -> None:
        """Drop a page from whichever list holds it (unmap/free path)."""
        if self._inactive.pop(page.vaddr, None) is None:
            if self._active.pop(page.vaddr, None) is None:
                raise KernelError(f"{page!r} is on no LRU list")

    def discard(self, page: Page) -> None:
        """Like :meth:`remove` but silent when absent."""
        if self._inactive.pop(page.vaddr, None) is None:
            self._active.pop(page.vaddr, None)

    def __contains__(self, page: Page) -> bool:
        return page.vaddr in self._active or page.vaddr in self._inactive

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def inactive_count(self) -> int:
        return len(self._inactive)

    def __len__(self) -> int:
        return len(self._active) + len(self._inactive)

    # -- reclaim --------------------------------------------------------------

    def select_victims(
        self, count: int, scan_limit_factor: int = 4
    ) -> List[Page]:
        """Pick up to ``count`` reclaim candidates.

        Scans from the inactive tail.  A page whose referenced bit is set
        gets a second chance: the bit is cleared and the page is promoted
        to the active list.  Unreferenced pages are removed and returned
        as victims.  The inactive list is first refilled from the active
        tail when it holds less than half the pages (Linux's
        inactive_is_low heuristic), with referenced bits cleared so hot
        pages must prove themselves again.
        """
        if count <= 0:
            raise KernelError(f"victim count must be positive, got {count}")
        self._refill_inactive()
        victims: List[Page] = []
        scanned = 0
        scan_limit = max(count * scan_limit_factor, count)
        while (
            self._inactive
            and len(victims) < count
            and scanned < scan_limit
        ):
            vaddr, page = self._inactive.popitem(last=False)
            scanned += 1
            if page.clear_referenced():
                # Second chance: promote.
                self._active[vaddr] = page
                continue
            victims.append(page)
        return victims

    def _refill_inactive(self) -> None:
        while self._active and len(self._inactive) < len(self._active):
            vaddr, page = self._active.popitem(last=False)
            page.clear_referenced()
            self._inactive[vaddr] = page

    # -- working-set estimation (harvester hook) --------------------------------

    def referenced_inactive_count(self) -> int:
        """Inactive pages whose referenced bit is currently set.

        Non-destructive (unlike :meth:`select_victims`' aging scan):
        the bits stay so reclaim still sees them.
        """
        return sum(1 for page in self._inactive.values() if page.referenced)

    def wss_estimate(self) -> int:
        """Working-set-size estimate from the page-access stats.

        Counts the pages the aging machinery currently believes are
        hot: the whole active list plus the inactive pages that were
        referenced since the last scan.  This is the signal the
        ``repro.market`` harvester shrinks a producer VM toward —
        everything else on the lists is reclaimable without a refault
        storm.
        """
        return self.active_count + self.referenced_inactive_count()

    # -- introspection ----------------------------------------------------------

    def oldest_inactive(self) -> Optional[Page]:
        if not self._inactive:
            return None
        vaddr = next(iter(self._inactive))
        return self._inactive[vaddr]

    def __repr__(self) -> str:
        return (
            f"<ActiveInactiveLists active={len(self._active)} "
            f"inactive={len(self._inactive)}>"
        )
