"""Exception hierarchy for the FluidMem reproduction.

Every package raises exceptions derived from :class:`ReproError` so callers
can catch library failures distinctly from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation engine."""


class InterruptError(SimulationError):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class MemoryError_(ReproError):
    """Errors from the memory substrate (frames, page tables, regions)."""


class OutOfFramesError(MemoryError_):
    """The host frame allocator has no free frames left."""


class PageTableError(MemoryError_):
    """Invalid page-table operation (double map, unmap of absent page, ...)."""


class RegionError(MemoryError_):
    """Invalid memory-region operation (overlap, bad bounds, ...)."""


class NetworkError(ReproError):
    """Errors from the simulated network fabric."""


class HostUnreachableError(NetworkError):
    """No route between two hosts on the fabric."""


class KVError(ReproError):
    """Errors from key-value store backends."""


class KeyNotFoundError(KVError):
    """GET/REMOVE on a key the store does not hold."""


class TransientStoreError(KVError):
    """A retryable backend failure: crashed/partitioned/flaky node.

    Raised while the failure *might* clear (the node can recover, the
    partition can heal, the next attempt can succeed).  Retry layers
    catch exactly this type; anything else is treated as permanent.
    """


class DataCorruptionError(TransientStoreError):
    """A read returned bytes whose checksum does not match what was
    written.  Transient in the retry sense: the same page can be
    re-read from another replica or re-fetched cleanly."""


class StoreUnavailableError(KVError):
    """A backend was declared dead: retries and failovers exhausted.

    Terminal — the monitor quarantines the affected VM rather than
    retrying further.
    """


class PartitionError(KVError):
    """Invalid partition id or virtual-partition encoding failure."""


class CoordinationError(ReproError):
    """Errors from the Zookeeper-like coordination service."""


class NodeExistsError(CoordinationError):
    """Create of a znode path that already exists."""


class NoNodeError(CoordinationError):
    """Operation on a znode path that does not exist."""


class SessionExpiredError(CoordinationError):
    """Operation on an expired coordination session."""


class QuorumLostError(CoordinationError):
    """Too few replicas alive to serve a consistent operation."""


class BlockDeviceError(ReproError):
    """Errors from the block-device layer."""


class OutOfRangeError(BlockDeviceError):
    """Block request beyond the end of the device."""


class KernelError(ReproError):
    """Errors from the simulated kernel subsystems."""


class SwapError(KernelError):
    """Swap subsystem failure (no swap space, bad swap entry, ...)."""


class OutOfSwapError(SwapError):
    """Swap device is full."""


class UffdError(KernelError):
    """Invalid userfaultfd operation."""


class UffdRegionError(UffdError):
    """Register/unregister of an invalid or overlapping uffd range."""


class VmError(ReproError):
    """Errors from the VM / hypervisor layer."""


class VcpuDeadlockError(VmError):
    """A vCPU can make no progress (e.g. recursive fault at 1-page footprint)."""


class FluidMemError(ReproError):
    """Errors from the FluidMem monitor and its components."""


class MonitorStateError(FluidMemError):
    """Monitor used while not running, or double-start, etc."""


class InvariantViolation(ReproError):
    """A runtime correctness invariant was broken (``repro.check``).

    Carries the invariant's name, structured details, and the tail of
    the observability event trace at the moment of the violation, so a
    failure arrives with its event context attached.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        details: dict = None,
        trace_tail: tuple = (),
    ) -> None:
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant
        self.details = details or {}
        self.trace_tail = tuple(trace_tail)

    def context_text(self) -> str:
        """Multi-line rendering of details plus the trace tail."""
        lines = [str(self)]
        for name in sorted(self.details):
            lines.append(f"  {name} = {self.details[name]!r}")
        if self.trace_tail:
            lines.append("  trace tail (most recent last):")
            for event in self.trace_tail:
                lines.append(f"    {event}")
        return "\n".join(lines)


class MarketError(ReproError):
    """Errors from the memory marketplace (``repro.market``)."""


class ParallelError(ReproError):
    """Errors from the multiprocess execution layer (``repro.parallel``).

    Raised when a worker process crashes more times than the retry
    budget allows, when a fleet partition dies mid-run, or when the
    coordinator/worker protocol is violated.
    """


class WorkloadError(ReproError):
    """Errors from workload generators."""


class ScenarioError(ReproError):
    """Errors from the declarative scenario platform (``repro.scenario``).

    Raised on schema violations (unknown fields, bad policy names, out
    of range values — each issue listed with its JSON path and, where a
    vocabulary exists, a did-you-mean suggestion) and on scenario
    compilation/runtime failures.
    """


class BenchError(ReproError):
    """Errors from the benchmark harness."""
