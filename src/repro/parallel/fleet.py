"""Sharded market-fleet runner: one event loop per VM partition.

The market experiment couples its hundreds of VMs only through three
narrow channels — the broker's ledger, the QoS throttle scalar, and
the per-tick chaos/budget exchange — so the fleet shards cleanly by
tenant group: each partition owns a contiguous block of tenants and
runs their access ticks (the dominant cost) on its own
:class:`~repro.sim.Environment` in its own process, while a
coordinator in the parent keeps the single authoritative
:class:`~repro.market.Broker` (with its live
:class:`~repro.check.CorrectnessChecker` shadow ledger) and sequences
the cross-partition phases.

**Conservative windows.**  Partitions advance decoupled between
barriers; the safe window for that is bounded below by the minimum
one-way latency any message between partitions could have — in this
repo's transport models that is
:func:`repro.net.min_transport_latency_us` (RDMA FDR propagation plus
per-message overhead).  The fleet's tick (default 10 000 µs) is far
coarser, and all cross-VM coupling happens at tick boundaries, so the
runner barriers every tick: ``window = conservative_window_us(
floor_us=tick_us)``.  :func:`repro.parallel.conservative_window_us`
enforces the floor-vs-bound rule.

**Determinism.**  Every VM's RNG stream is derived from its *name*
(:func:`~repro.market.fleet.build_tenant_vms`), clocks advance through
the identical float additions the serial fleet performs (``sync_to``
barriers plus the same harvest timeouts), broker operations are
applied in the serial fleet's global VM order, and the QoS throttle
moves by the globally-combined protected-violating verdict
(:meth:`~repro.market.QosManager.apply_throttle_decision`).  The
result — tenant summaries, broker counters, and the merged metrics
registry — is byte-identical to the serial run at any partition count.

Phase protocol, per tick (coordinator <-> each partition pipe):

1. ``chaos``      partition -> deaths in VM order; coordinator applies
                  ``vm_died`` globally, replies final lease budgets.
2. (access ticks run partition-local; no messages.)
3. Market rounds every ``market_every`` ticks:
   ``market``          all partitions report an identical clock;
   ``harvest_phase``   producer blocks run sequentially in the serial
                       fleet's sorted-harvester order, broker calls
                       relayed as blocking RPCs carrying the shard
                       clock;
   ``consumer_phase``  clocks re-synced to the post-harvest time,
                       revocation budgets applied, lease demands
                       gathered in VM order;
   ``qos_phase``       grants applied, per-tenant windows closed;
   ``throttle``        the OR of every shard's protected-violating
                       verdict, applied everywhere.
4. Drain: harvester shutdown (same sequential order), consumer lease
   release in global VM order, a final steady-state audit, and one
   ``report`` carrying tenant summaries plus the full metrics-registry
   state for exact merging.

A partition process that dies mid-protocol raises
:class:`~repro.errors.ParallelError` naming it; ``KeyboardInterrupt``
terminates and joins every partition before re-raising.
"""

from __future__ import annotations

import multiprocessing
import random
import signal
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import MarketError, ParallelError
from ..faults import FaultPlan
from ..market.broker import Broker
from ..market.fleet import (
    MarketVM,
    TenantSpec,
    apply_chaos,
    build_tenant_vms,
    consumer_demand,
    summarize_tenants,
)
from ..market.harvester import HarvestConfig, Harvester
from ..market.qos import QosManager
from ..obs import NULL_OBS, Observability
from ..sim import Environment, RandomStreams, derive_seed
from .windows import conservative_window_us, partition_seed

__all__ = ["partition_specs", "run_partitioned_market"]

#: Pipe poll interval while watching for partition death (seconds).
_POLL_S = 0.05


def partition_specs(
    specs: Sequence[TenantSpec], partitions: int
) -> List[List[TenantSpec]]:
    """Split ``specs`` into contiguous, non-empty partition groups.

    Contiguity matters: the serial fleet's global VM order is the
    concatenation of spec blocks, and the coordinator replays broker
    operations in exactly that order by walking partitions in index
    order.  ``partitions`` beyond ``len(specs)`` is clamped — a tenant
    is the smallest shardable unit.
    """
    if partitions < 1:
        raise ParallelError(f"partitions must be >= 1, got {partitions}")
    count = min(partitions, len(specs))
    bounds = [len(specs) * index // count for index in range(count + 1)]
    return [
        list(specs[bounds[index]:bounds[index + 1]])
        for index in range(count)
    ]


@dataclass(frozen=True)
class _PartitionConfig:
    """Everything one partition process needs (must pickle)."""

    index: int
    specs: Tuple[TenantSpec, ...]
    seed: int
    ticks: int
    tick_us: float
    market_every: int
    plan: Optional[FaultPlan]
    harvest_config: Optional[HarvestConfig]
    obs_enabled: bool


class _BrokerProxy:
    """The partition-side stand-in for the coordinator's broker.

    Implements exactly the surface :class:`~repro.market.Harvester`
    touches; every call is a blocking pipe RPC carrying the shard's
    clock so the ledger timestamps (``granted_at``/``ended_at``) match
    the serial run.
    """

    def __init__(self, conn, env: Environment) -> None:
        self._conn = conn
        self._env = env

    def _call(self, method: str, *args):
        self._conn.send(("brk", method, args, self._env.now))
        kind, payload = self._conn.recv()
        if kind != "ok":
            raise ParallelError(f"broker rpc {method} failed: {payload}")
        return payload

    def outstanding_of(self, producer: str) -> int:
        return self._call("outstanding_of", producer)

    def offer(self, producer: str, pages: int) -> int:
        return self._call("offer", producer, pages)

    def reclaim(self, producer: str, pages: int):
        reclaimed, revoked_count = self._call("reclaim", producer, pages)
        # Callers only test truthiness and len(); the Lease objects
        # themselves stay on the coordinator.
        return reclaimed, [None] * revoked_count


# ---------------------------------------------------------------------------
# partition (child process) side
# ---------------------------------------------------------------------------


def _harvest(harvesters: Dict[str, Harvester], names: Sequence[str]):
    """The serial fleet's harvest loop over one partition's block."""
    for name in names:
        harvester = harvesters[name]
        if not harvester.target.dead:
            yield from harvester.tick()


def _partition_main(conn, config: _PartitionConfig) -> None:
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Hygiene only: fleet code never touches the global random module,
    # but a partition-derived seed keeps any stray use per-partition
    # deterministic (mirrors the work-queue pool's per-task reseed).
    random.seed(partition_seed(config.seed, config.index))
    try:
        _run_partition(conn, config)
    except BaseException as exc:  # noqa: BLE001 - relayed to the parent
        try:
            conn.send((
                "error", config.index, f"{type(exc).__name__}: {exc}"
            ))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _run_partition(conn, config: _PartitionConfig) -> None:
    env = Environment()
    obs = Observability(enabled=config.obs_enabled)
    qos = QosManager(obs=obs)
    # Same root stream as the serial fleet: per-VM streams are derived
    # by name, so building only this partition's tenants replays the
    # exact serial access streams.
    streams = RandomStreams(derive_seed(config.seed, "market"))
    counters = obs.counters_for(component="fleet")
    broker = _BrokerProxy(conn, env)
    vms: List[MarketVM] = []
    harvesters: Dict[str, Harvester] = {}
    for spec in config.specs:
        qos.register(spec.name, spec.slo)
        for vm in build_tenant_vms(env, spec, streams):
            vms.append(vm)
            if spec.role == "producer":
                harvesters[vm.name] = Harvester(
                    env, vm.name, vm, broker,
                    config=config.harvest_config, obs=obs,
                )
    by_name = {vm.name: vm for vm in vms}

    def apply_budgets(budgets: Sequence[Tuple[str, int]]) -> None:
        for name, pages in budgets:
            by_name[name].set_remote_budget(pages)

    for tick in range(config.ticks):
        deaths: List[str] = []
        if config.plan is not None:
            apply_chaos(
                config.plan, env.now, vms, harvesters,
                counters, deaths.append,
            )
        conn.send(("chaos", config.index, env.now, deaths))
        msg = conn.recv()
        if msg[0] != "budgets":
            raise ParallelError(
                f"partition {config.index}: expected budgets, "
                f"got {msg[0]!r}"
            )
        apply_budgets(msg[1])
        for vm in vms:
            if vm.dead:
                continue
            vm.run_tick(qos, qos.throttle_delay_us(vm.spec.name))
        if (tick + 1) % config.market_every == 0:
            _market_round(
                conn, config, env, qos, obs, vms, harvesters,
                apply_budgets,
            )
        env.sync_to(env.now + config.tick_us)

    # Drain protocol: shutdown -> release -> report.
    alive_consumers = [
        vm.name for vm in vms
        if not vm.dead and vm.spec.role == "consumer"
    ]
    conn.send(("drain", config.index, env.now, alive_consumers))
    while True:
        msg = conn.recv()
        kind = msg[0]
        if kind == "shutdown_phase":
            for name in msg[1]:
                harvesters[name].shutdown()
            conn.send(("shutdown_done", config.index, env.now))
        elif kind == "release_phase":
            for vm in vms:
                if not vm.dead and vm.spec.role == "consumer":
                    vm.set_remote_budget(0)
            conn.send(("release_done", config.index))
        elif kind == "report":
            state = obs.registry.export_state() if obs.enabled else None
            conn.send((
                "report",
                config.index,
                summarize_tenants(list(config.specs), vms, qos),
                dict(counters.as_dict()),
                state,
            ))
            return
        else:
            raise ParallelError(
                f"partition {config.index}: unexpected drain message "
                f"{kind!r}"
            )


def _market_round(
    conn,
    config: _PartitionConfig,
    env: Environment,
    qos: QosManager,
    obs: Observability,
    vms: List[MarketVM],
    harvesters: Dict[str, Harvester],
    apply_budgets,
) -> None:
    conn.send(("market", config.index, env.now))
    p99s: Dict[str, float] = {}
    while True:
        msg = conn.recv()
        kind = msg[0]
        if kind == "harvest_phase":
            _, start_now, names = msg
            env.sync_to(start_now)
            proc = env.process(_harvest(harvesters, names))
            env.run()
            if not proc.ok:
                raise proc.value
            conn.send(("harvest_done", config.index, env.now))
        elif kind == "consumer_phase":
            _, sync_now, budgets = msg
            env.sync_to(sync_now)
            apply_budgets(budgets)
            demands = []
            for vm in vms:
                want = consumer_demand(vm)
                if want is not None:
                    demands.append((
                        vm.name, want, vm.spec.max_price,
                        vm.spec.slo.priority,
                    ))
            conn.send(("demands", config.index, demands))
        elif kind == "qos_phase":
            apply_budgets(msg[1])
            p99s, protected = qos.close_windows()
            alive = sum(1 for vm in vms if not vm.dead)
            conn.send(("qos_done", config.index, protected, alive))
        elif kind == "throttle":
            qos.apply_throttle_decision(msg[1])
            qos.p99_history.append(dict(p99s))
            if obs.enabled:
                registry = obs.registry
                for tenant in sorted(p99s):
                    registry.gauge(
                        "tenant_p99_fault_latency_us", tenant=tenant
                    ).set(p99s[tenant])
            conn.send(("market_done", config.index))
            return
        else:
            raise ParallelError(
                f"partition {config.index}: unexpected market message "
                f"{kind!r}"
            )


# ---------------------------------------------------------------------------
# coordinator (parent process) side
# ---------------------------------------------------------------------------


class _CoordinatorClock:
    """The broker's ``env``: just a settable ``now`` the coordinator
    snaps to the shard clock carried by each message."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0


def _recv(conn, proc, index: int):
    """One message from partition ``index``; death-aware."""
    while True:
        if conn.poll(_POLL_S):
            try:
                msg = conn.recv()
            except EOFError:
                raise ParallelError(
                    f"market partition {index} closed its pipe "
                    "unexpectedly"
                ) from None
            if msg[0] == "error":
                raise ParallelError(
                    f"market partition {msg[1]} failed: {msg[2]}"
                )
            return msg
        if not proc.is_alive():
            raise ParallelError(
                f"market partition {index} died "
                f"(exit code {proc.exitcode})"
            )


def _gather(conns, procs, kind: str):
    """The ``kind`` message from every partition, payloads by index."""
    out = []
    for index, (conn, proc) in enumerate(zip(conns, procs)):
        msg = _recv(conn, proc, index)
        if msg[0] != kind or msg[1] != index:
            raise ParallelError(
                f"market partition {index}: expected {kind!r}, "
                f"got {msg[0]!r} from {msg[1]}"
            )
        out.append(msg[2:])
    return out


def _same_clock(values: Sequence[float], phase: str) -> float:
    first = values[0]
    for value in values[1:]:
        if value != first:
            raise ParallelError(
                f"partition clocks diverged at {phase}: {values}"
            )
    return first


def run_partitioned_market(
    specs: Sequence[TenantSpec],
    seed: int,
    ticks: int,
    tick_us: float = 10_000.0,
    market_every: int = 3,
    partitions: int = 2,
    fault_plan: Optional[FaultPlan] = None,
    harvest_config: Optional[HarvestConfig] = None,
    obs: Optional[Observability] = None,
    check=None,
) -> Dict[str, object]:
    """Run the market fleet sharded over ``partitions`` processes.

    Returns a dict with the merged per-tenant ``summary`` (spec
    order), ``lease_rejections``, ``vm_crashes``, ``total_vms``,
    ``spot_price_final``, ``broker_counters``, the effective
    ``partitions`` count, and the conservative ``window_us`` — all
    equal to what the serial :class:`~repro.market.MarketFleet` run
    produces.  When ``obs`` is enabled, every partition's metrics
    registry is merged into ``obs.registry`` (exact, in partition
    order) alongside the coordinator's own broker/checker instruments.
    """
    if ticks < 1:
        raise MarketError("need at least one tick")
    obs = obs if obs is not None else NULL_OBS
    groups = partition_specs(specs, partitions)
    # The barrier interval doubles as the conservative window; the
    # helper enforces that it cannot undercut the transport-model
    # lookahead bound.
    window_us = conservative_window_us(floor_us=tick_us)

    clock = _CoordinatorClock()
    broker = Broker(clock, obs=obs, check=check)
    check_on = check is not None and check.enabled
    fleet_counters = obs.counters_for(component="fleet")

    vm_names = [
        f"{spec.name}-{index:03d}"
        for spec in specs
        for index in range(spec.vms)
    ]
    name_to_part: Dict[str, int] = {}
    for part_index, group in enumerate(groups):
        for spec in group:
            for index in range(spec.vms):
                name_to_part[f"{spec.name}-{index:03d}"] = part_index
    producer_names = sorted(
        f"{spec.name}-{index:03d}"
        for spec in specs if spec.role == "producer"
        for index in range(spec.vms)
    )
    # Sequential harvest blocks: sorted producer order, grouped by
    # consecutive owning partition — the serial sorted-harvester loop,
    # sliced.
    harvest_groups: List[Tuple[int, List[str]]] = []
    for name in producer_names:
        part_index = name_to_part[name]
        if harvest_groups and harvest_groups[-1][0] == part_index:
            harvest_groups[-1][1].append(name)
        else:
            harvest_groups.append((part_index, [name]))

    # Revocation listener: the serial fleet refreshes the consumer's
    # budget immediately; here the refresh is deferred to the next
    # barrier.  set_remote_budget only demotes FIFO overflow, so the
    # flushed final state matches the serial interleaving exactly.
    pending: Dict[str, bool] = {}

    def on_revocation(lease, reason: str) -> None:
        pending[lease.consumer] = True
        fleet_counters.incr("consumer_revocations")

    broker.revocation_listeners.append(on_revocation)

    def flush_budgets() -> List[List[Tuple[str, int]]]:
        out: List[List[Tuple[str, int]]] = [[] for _ in groups]
        for name in vm_names:
            if name in pending:
                out[name_to_part[name]].append(
                    (name, broker.granted_to(name))
                )
        pending.clear()
        return out

    ctx = multiprocessing.get_context()
    conns = []
    procs = []
    lease_rejections = 0
    try:
        for part_index, group in enumerate(groups):
            parent_conn, child_conn = ctx.Pipe()
            config = _PartitionConfig(
                index=part_index,
                specs=tuple(group),
                seed=seed,
                ticks=ticks,
                tick_us=tick_us,
                market_every=market_every,
                plan=fault_plan,
                harvest_config=harvest_config,
                obs_enabled=obs.enabled,
            )
            proc = ctx.Process(
                target=_partition_main,
                args=(child_conn, config),
                daemon=True,
                name=f"repro-market-p{part_index}",
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        for tick in range(ticks):
            infos = _gather(conns, procs, "chaos")
            clock.now = _same_clock(
                [info[0] for info in infos], f"tick {tick}"
            )
            # Deaths in global VM order: partition blocks are
            # contiguous, so concatenation in index order is the
            # serial fleet's iteration order.
            for info in infos:
                for name in info[1]:
                    broker.vm_died(name)
            budgets = flush_budgets()
            for part_index, conn in enumerate(conns):
                conn.send(("budgets", budgets[part_index]))

            if (tick + 1) % market_every != 0:
                continue
            enters = _gather(conns, procs, "market")
            now = _same_clock(
                [enter[0] for enter in enters], f"market tick {tick}"
            )
            clock.now = now
            for part_index, names in harvest_groups:
                conns[part_index].send(("harvest_phase", now, names))
                while True:
                    msg = _recv(
                        conns[part_index], procs[part_index], part_index
                    )
                    if msg[0] == "brk":
                        _, method, args, rpc_now = msg
                        clock.now = rpc_now
                        if method == "reclaim":
                            reclaimed, revoked = broker.reclaim(*args)
                            conns[part_index].send(
                                ("ok", (reclaimed, len(revoked)))
                            )
                        else:
                            conns[part_index].send(
                                ("ok", getattr(broker, method)(*args))
                            )
                    elif msg[0] == "harvest_done":
                        now = msg[2]
                        break
                    else:
                        raise ParallelError(
                            f"market partition {part_index}: unexpected "
                            f"harvest message {msg[0]!r}"
                        )
            clock.now = now
            budgets = flush_budgets()
            for part_index, conn in enumerate(conns):
                conn.send(("consumer_phase", now, budgets[part_index]))
            demand_lists = _gather(conns, procs, "demands")
            grants: List[List[Tuple[str, int]]] = [[] for _ in groups]
            for demand_list in demand_lists:
                for name, want, max_price, priority in demand_list[0]:
                    lease = broker.request(
                        name, want,
                        max_price_per_page=max_price, priority=priority,
                    )
                    if lease is None:
                        lease_rejections += 1
                    else:
                        grants[name_to_part[name]].append(
                            (name, broker.granted_to(name))
                        )
            for part_index, conn in enumerate(conns):
                conn.send(("qos_phase", grants[part_index]))
            verdicts = _gather(conns, procs, "qos_done")
            protected = any(verdict[0] for verdict in verdicts)
            for conn in conns:
                conn.send(("throttle", protected))
            _gather(conns, procs, "market_done")
            if obs.enabled:
                obs.registry.gauge("fleet_alive_vms").set(
                    sum(verdict[1] for verdict in verdicts)
                )
            if check_on:
                check.check_steady_state(broker=broker)

        drains = _gather(conns, procs, "drain")
        clock.now = _same_clock([drain[0] for drain in drains], "drain")
        alive_consumers = set()
        for drain in drains:
            alive_consumers.update(drain[1])
        for part_index, names in harvest_groups:
            conns[part_index].send(("shutdown_phase", names))
            while True:
                msg = _recv(
                    conns[part_index], procs[part_index], part_index
                )
                if msg[0] == "brk":
                    _, method, args, rpc_now = msg
                    clock.now = rpc_now
                    if method == "reclaim":
                        reclaimed, revoked = broker.reclaim(*args)
                        conns[part_index].send(
                            ("ok", (reclaimed, len(revoked)))
                        )
                    else:
                        conns[part_index].send(
                            ("ok", getattr(broker, method)(*args))
                        )
                elif msg[0] == "shutdown_done":
                    break
                else:
                    raise ParallelError(
                        f"market partition {part_index}: unexpected "
                        f"shutdown message {msg[0]!r}"
                    )
        for name in vm_names:
            if name in alive_consumers:
                for lease in broker.leases_of(name):
                    broker.release(lease)
        # Alive consumers zero their budgets next; any deferred
        # refreshes from the shutdown reclaims are superseded.
        pending.clear()
        for conn in conns:
            conn.send(("release_phase",))
        _gather(conns, procs, "release_done")
        if check_on:
            check.check_steady_state(broker=broker)
        for conn in conns:
            conn.send(("report",))
        reports = _gather(conns, procs, "report")
        for proc in procs:
            proc.join()
    except BaseException:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join()
        raise
    finally:
        for conn in conns:
            conn.close()

    summary: Dict[str, Dict[str, object]] = {}
    for report in reports:
        summary.update(report[0])
    if obs.enabled:
        for report in reports:
            obs.registry.merge_state(report[2])
    return {
        "summary": summary,
        "total_vms": sum(spec.vms for spec in specs),
        "lease_rejections": lease_rejections,
        "vm_crashes": sum(
            report[1].get("vm_crashes", 0) for report in reports
        ),
        "spot_price_final": broker.spot_price(),
        "broker_counters": dict(broker.counters.as_dict()),
        "partitions": len(groups),
        "window_us": window_us,
    }
