"""Multiprocess work-queue runner with deterministic result merging.

The embarrassingly-parallel layers of this repo — ``repro.check``
campaign grids and ``repro.perfbench`` seed sweeps — share one
execution contract, and this module is its single implementation:

* **Tasks are keyed.**  Every task is a ``(key, payload)`` pair; the
  key is the task's position in the submitted sequence.  Results are
  merged **ordered by task key, never by completion order**, so the
  merged output is byte-identical no matter how many workers ran or
  how the OS scheduled them.
* **Workers are seeded.**  Before each task runs, the worker reseeds
  the global :mod:`random` module from ``derive_seed(seed, task key)``
  — a task that (incorrectly) leans on ambient randomness still sees
  a per-task stream that does not depend on which worker picked it up.
  Well-behaved task functions carry their own seeds in the payload.
* **Crashes are detected and retried.**  A worker that dies
  (``os._exit``, OOM kill, segfault) while holding a task is noticed
  via its exit code; the orphaned task is re-queued up to ``retries``
  times, then the pool raises a :class:`~repro.errors.ParallelError`
  naming the task.  A replacement worker is spawned so the pool never
  shrinks below the requested width.
* **SIGINT tears down gracefully.**  Workers ignore SIGINT; the parent
  catches :class:`KeyboardInterrupt`, terminates every worker, joins
  them, and re-raises — no orphan processes, no half-written queues.

``workers <= 1`` bypasses multiprocessing entirely and runs the tasks
in-process, in order: the serial path **is** the existing sequential
code path, which is what the determinism pins compare against.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import ParallelError
from ..sim import derive_seed

__all__ = ["PoolStats", "run_tasks"]

#: How long the parent sleeps between result-queue polls (seconds).
_POLL_S = 0.05
#: Exit code workers use for a clean shutdown.
_OK_EXIT = 0


@dataclass
class PoolStats:
    """What the pool observed; fill by passing an instance to
    :func:`run_tasks`."""

    workers: int = 0
    tasks: int = 0
    retries: int = 0
    worker_crashes: int = 0
    task_errors: int = 0
    #: task key -> number of attempts that key needed.
    attempts: Dict[int, int] = field(default_factory=dict)


def _worker_main(
    fn: Callable[[Any], Any],
    seed: int,
    task_queue: "multiprocessing.Queue",
    result_queue: "multiprocessing.Queue",
    claims: "multiprocessing.Array",
    slot: int,
) -> None:
    """Worker loop: claim, run, report, until the ``None`` sentinel."""
    # The parent owns teardown: a ^C must not kill workers mid-put,
    # or the queues are left in an undefined state.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    import random as _random

    while True:
        item = task_queue.get()
        if item is None:
            result_queue.put(("exit", slot, None, None))
            return
        key, payload = item
        # Claims go through shared memory, not the result queue: a
        # shared-memory write is visible to the parent the moment it
        # happens, whatever kills this process afterwards.  The slot is
        # deliberately NOT reset after the task: if this process dies
        # after fn returns but before the "done" put completes, the
        # parent sees a stale claim for a still-pending key and simply
        # reruns it (fn is deterministic per payload, so the merged
        # bytes cannot change).
        claims[slot] = key
        # Hygiene seeding: ambient randomness, if any, is a function of
        # the task key — never of the worker that happened to claim it.
        _random.seed(derive_seed(seed, f"task:{key}"))
        try:
            result = fn(payload)
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            result_queue.put(
                ("error", slot, key, f"{type(exc).__name__}: {exc}")
            )
            continue
        result_queue.put(("done", slot, key, result))


class _Pool:
    """Parent-side state machine for one :func:`run_tasks` call."""

    def __init__(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        workers: int,
        seed: int,
        retries: int,
        emit: Callable[[str], None],
        stats: PoolStats,
    ) -> None:
        self.fn = fn
        self.payloads = list(payloads)
        self.workers = workers
        self.seed = seed
        self.retries = retries
        self.emit = emit
        self.stats = stats
        ctx = multiprocessing.get_context()
        self.task_queue: "multiprocessing.Queue" = ctx.Queue()
        # Results travel over a SimpleQueue on purpose: a regular Queue
        # buffers puts in a background feeder thread, so a worker that
        # dies hard (os._exit, OOM kill, segfault) can take finished
        # results down with it — they were "sent" but never flushed.
        # SimpleQueue writes to the OS pipe synchronously in put(), so
        # once put() returns, the bytes survive the process; a crash can
        # only ever lose the task that was running, which the claim
        # board below recovers.
        self.result_queue: "multiprocessing.SimpleQueue" = (
            ctx.SimpleQueue()
        )
        # Crash-proof claim board: one slot per worker seat, holding the
        # task key that seat most recently claimed (-1 = never claimed).
        # Shared memory survives any way the worker can die.
        self.claims = ctx.Array("q", [-1] * workers)
        self.ctx = ctx
        #: seat index -> the process currently occupying that seat.
        self.procs: Dict[int, multiprocessing.Process] = {}
        #: seat index -> human-readable worker number (for messages).
        self.worker_ids: Dict[int, int] = {}
        #: task key -> attempt count so far.
        self.attempts: Dict[int, int] = {}
        self.results: Dict[int, Any] = {}
        self.pending: set = set()
        self.next_worker_id = 0

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self, slot: int) -> None:
        self.claims[slot] = -1
        self.worker_ids[slot] = self.next_worker_id
        self.next_worker_id += 1
        proc = self.ctx.Process(
            target=_worker_main,
            args=(self.fn, self.seed, self.task_queue,
                  self.result_queue, self.claims, slot),
            daemon=True,
        )
        proc.start()
        self.procs[slot] = proc

    def _reap_crashes(self) -> None:
        """Re-queue tasks held by workers that died; replace the dead."""
        for slot, proc in list(self.procs.items()):
            if proc.is_alive():
                continue
            proc.join()
            if proc.exitcode == _OK_EXIT:
                # Clean exit after the sentinel; nothing to do.
                del self.procs[slot]
                continue
            key = self.claims[slot]
            del self.procs[slot]
            self.stats.worker_crashes += 1
            if key < 0 or key not in self.pending:
                # Never claimed anything, or its last claim already
                # reported a result: died between tasks.  Just refill
                # the seat.
                self._spawn(slot)
                continue
            if self.attempts[key] >= 1 + self.retries:
                raise ParallelError(
                    f"task {key} crashed its worker "
                    f"{self.attempts[key]} time(s) (last exit code "
                    f"{proc.exitcode}); retry budget of "
                    f"{self.retries} exhausted"
                )
            self.attempts[key] += 1
            self.emit(
                f"worker {self.worker_ids[slot]} died "
                f"(exit {proc.exitcode}) holding task {key}; retrying "
                f"(attempt {self.attempts[key]} of "
                f"{1 + self.retries})"
            )
            self.stats.retries += 1
            self.task_queue.put((key, self.payloads[key]))
            self._spawn(slot)

    def terminate_all(self) -> None:
        for proc in self.procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs.values():
            proc.join()
        self.procs.clear()
        # Unblock the queue feeder threads so interpreter exit is clean.
        self.task_queue.cancel_join_thread()

    # -- main loop ---------------------------------------------------------

    def run(self) -> List[Any]:
        for key, payload in enumerate(self.payloads):
            self.attempts[key] = 1
            self.task_queue.put((key, payload))
        for slot in range(self.workers):
            self._spawn(slot)

        self.pending = set(range(len(self.payloads)))
        first_error: Optional[str] = None
        while self.pending:
            # SimpleQueue has no get(timeout=); poll its read end so the
            # crash reaper still runs while the queue is quiet.
            if not self.result_queue._reader.poll(_POLL_S):
                self._reap_crashes()
                continue
            kind, _slot, key, value = self.result_queue.get()
            if kind == "done":
                # A lost "done" makes the reaper rerun the task, so a
                # second report for the same key is possible — the
                # pending guard keeps the first result authoritative
                # (they are identical anyway: fn is deterministic).
                if key in self.pending:
                    self.pending.discard(key)
                    self.results[key] = value
            elif kind == "error":
                self.stats.task_errors += 1
                if first_error is None:
                    first_error = f"task {key}: {value}"
                self.pending.discard(key)
            elif kind == "exit":
                pass  # clean shutdown, reaped below

        # All tasks accounted for: release the workers.
        for _ in range(len(self.procs)):
            self.task_queue.put(None)
        deadline = time.monotonic() + 10.0
        for proc in self.procs.values():
            proc.join(max(0.0, deadline - time.monotonic()))
        self.terminate_all()

        if first_error is not None:
            raise ParallelError(
                f"{self.stats.task_errors} task(s) raised; first: "
                f"{first_error}"
            )
        self.stats.attempts = dict(self.attempts)
        return [self.results[key] for key in range(len(self.payloads))]


def run_tasks(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: int = 1,
    seed: int = 0,
    retries: int = 1,
    emit: Optional[Callable[[str], None]] = None,
    stats: Optional[PoolStats] = None,
) -> List[Any]:
    """Run ``fn`` over ``payloads``; results in **payload order**.

    ``workers <= 1`` runs in-process (the serial reference path).
    ``fn`` must be importable from the worker (module-level) and its
    payloads and results picklable.  ``retries`` bounds how many times
    a task orphaned by a worker crash is re-queued before the pool
    gives up with a :class:`~repro.errors.ParallelError`.  ``stats``,
    when given, is filled with what the pool observed.
    """
    stats = stats if stats is not None else PoolStats()
    stats.workers = max(1, workers)
    stats.tasks = len(payloads)
    emit = emit or (lambda line: None)
    if not payloads:
        return []
    if workers <= 1:
        results = []
        for key, payload in enumerate(payloads):
            stats.attempts[key] = 1
            results.append(fn(payload))
        return results
    pool = _Pool(
        fn, payloads, min(workers, len(payloads)), seed, retries,
        emit, stats,
    )
    try:
        return pool.run()
    except KeyboardInterrupt:
        pool.terminate_all()
        raise
    except ParallelError:
        pool.terminate_all()
        raise
