"""Multi-core execution layer (DESIGN.md §14).

Two independent facilities, one determinism contract:

* :func:`run_tasks` — a multiprocess work-queue for embarrassingly
  parallel grids (``repro.check`` campaigns, ``repro.perfbench`` seed
  sweeps).  Results merge in task-key order, never completion order.
* :func:`run_partitioned_market` — a sharded fleet runner that splits
  the market fleet by tenant group across processes and synchronizes
  them on conservative time windows sized from the
  :mod:`repro.net` transport lookahead bound.

Both guarantee: the parallel output is byte-identical to the serial
path at any worker/partition count, and ``workers=1`` /
``partitions=1`` *is* the serial path.
"""

from .pool import PoolStats, run_tasks
from .windows import conservative_window_us, partition_seed

__all__ = [
    "PoolStats",
    "run_tasks",
    "conservative_window_us",
    "partition_seed",
    "run_partitioned_market",
]


def run_partitioned_market(*args, **kwargs):
    """Lazy re-export of :func:`repro.parallel.fleet.run_partitioned_market`.

    Imported on first call so that ``import repro.parallel`` does not
    drag in the market fleet stack.
    """
    from .fleet import run_partitioned_market as _impl

    return _impl(*args, **kwargs)
