"""Conservative synchronization windows and partition seeds.

The sharded fleet runner is a *conservative* parallel discrete-event
scheme: partitions may only advance through a time window that no
cross-partition message can reach into.  The window is sized from the
transport models' hard latency floor (DESIGN.md §14):

    window = max(floor_us, min over transports of min_one_way_us())

A message sent at simulated time ``t`` from one partition cannot
affect another before ``t + lookahead``, so running every partition
independently over ``[t, t + window)`` and exchanging state at the
barrier is equivalent to a serial interleaving — provided all
cross-partition coupling happens *at* the barriers, which the fleet
runner arranges (market rounds and chaos transitions are barrier
events).

Partition seeds are derived, not split: ``partition_seed(root, i)``
feeds the same keyed-blake2b derivation that the simulator's named
RNG streams use, so partition ``i`` sees an identical stream whether
the fleet runs in one process or eight.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..net.transports import TransportSpec, min_transport_latency_us
from ..sim import derive_seed

__all__ = ["conservative_window_us", "partition_seed"]


def conservative_window_us(
    transports: Optional[Sequence[TransportSpec]] = None,
    floor_us: float = 0.0,
) -> float:
    """Safe-advance window in µs for partitions linked by ``transports``.

    ``None`` means "any modeled transport could carry cross-partition
    traffic" — the global bound.  ``floor_us`` lets callers batch
    several lookahead quanta per barrier when the coupling is coarser
    than a single message (e.g. the market fleet only couples at tick
    boundaries), trading barrier overhead against none of the
    correctness: the window may exceed the message lookahead only when
    the caller proves no finer-grained coupling exists.
    """
    bound = min_transport_latency_us(transports)
    if bound <= 0.0:
        raise ValueError(f"non-positive lookahead bound {bound}")
    return max(float(floor_us), bound)


def partition_seed(root_seed: int, partition: int) -> int:
    """Seed for partition ``partition`` derived from ``root_seed``.

    Stable across partition counts: partition 3 of 4 and partition 3
    of 8 get the same seed, so a VM group's random trajectory depends
    only on which partition *index* hosts it, never on the topology.
    """
    if partition < 0:
        raise ValueError(f"negative partition index {partition}")
    return derive_seed(root_seed, f"partition:{partition}")
