"""Shared resources for simulation processes.

Three classic primitives:

* :class:`Resource` — a semaphore with ``capacity`` slots and a FIFO wait
  queue (models CPUs, device queue depth, NICs).
* :class:`Store` — an unbounded-or-bounded buffer of items with blocking
  ``get``/``put`` (models message queues, event fds, work lists).
* :class:`Container` — a continuous quantity with blocking ``get``/``put``
  (models byte pools, credit counters).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from ..errors import SimulationError
from . import core as _core
from .core import Environment, Event

__all__ = ["Resource", "Request", "Store", "Container"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Fires when the slot is granted.  Must be released with
    :meth:`Resource.release` (or used as a context manager inside a
    process via ``with``-less convention: yield then release).
    """

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger_requests()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.resource.release(self)


class Resource:
    """A semaphore with FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._queue: Deque[Request] = deque()
        self._users: List[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests still waiting."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when granted."""
        return Request(self)

    def try_acquire(self) -> Optional[Request]:
        """Claim a free slot with no event machinery.

        Returns an already-granted token when the fast path applies
        (fast path enabled, no scheduler installed, no waiters, a slot
        free) — grant order is decided at request time either way, so
        skipping the grant event cannot change who gets the slot.
        Returns ``None`` otherwise; the caller falls back to
        ``yield self.request()``.  Release the token with
        :meth:`release` as usual.
        """
        if not _core.FASTPATH_ON or self.env.scheduler is not None:
            return None
        if self._queue or len(self._users) >= self.capacity:
            return None
        request = Request.__new__(Request)
        request.env = self.env
        request.callbacks = None  # already processed: a pure token
        request._value = None
        request._ok = True
        request._defused = False
        request.resource = self
        self._users.append(request)
        return request

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        try:
            self._users.remove(request)
        except ValueError:
            # Never granted: remove from the wait queue if still there.
            try:
                self._queue.remove(request)
            except ValueError:
                raise SimulationError("release() of an unknown request")
        self._trigger_requests()

    def _trigger_requests(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            request = self._queue.popleft()
            self._users.append(request)
            request.succeed()


class StoreGet(Event):
    """Pending ``get`` on a :class:`Store`; fires with the item."""

    def __init__(self, store: "Store", predicate: Optional[Callable[[Any], bool]]) -> None:
        super().__init__(store.env)
        self.predicate = predicate
        store._getters.append(self)
        store._dispatch()


class StorePut(Event):
    """Pending ``put`` on a bounded :class:`Store`; fires when stored."""

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._putters.append(self)
        store._dispatch()


class Store:
    """A FIFO buffer of items with blocking get/put.

    ``capacity`` of ``None`` means unbounded (puts never block).
    ``get`` accepts an optional predicate to take the first matching item
    (a FilterStore in SimPy terms).
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Add ``item``; the event fires once it is actually stored."""
        return StorePut(self, item)

    def put_nowait(self, item: Any) -> None:
        """Synchronous put with no event machinery.

        Only valid on unbounded stores (a bounded put may have to
        block, which needs the event).  Any waiting getter is served
        exactly as a ``put`` would serve it.
        """
        if self.capacity is not None:
            raise SimulationError("put_nowait() requires an unbounded store")
        items = self.items
        items.append(item)
        getters = self._getters
        if getters:
            # Dominant shape (the monitor's single fault-event getter):
            # one unconditional live getter, no blocked putters — hand
            # the oldest item over without the general dispatch sweep.
            if len(getters) == 1 and not self._putters:
                getter = getters[0]
                if getter.predicate is None and not getter.triggered:
                    getters.popleft()
                    getter.succeed(items.popleft())
                    return
            self._dispatch()

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Take the oldest item (or oldest matching ``predicate``)."""
        return StoreGet(self, predicate)

    def try_get(self) -> Any:
        """Non-blocking take; returns the item or ``None`` if empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._dispatch()
        return item

    def try_get_batch(self) -> Any:
        """Guarded synchronous take for burst drains (DESIGN.md §17).

        Returns the oldest item iff consuming it right now is provably
        equivalent to ``yield self.get()``: fast-path *and* batch
        switches on, no schedule-exploration policy, no competing
        getters or blocked putters, an item present, and no heap event
        due at the current time — under those conditions the granular
        get's success event would have been the very next thing to
        fire, so nothing else could have run in between.  Returns
        ``None`` otherwise; the caller falls back to
        ``yield self.get()``.
        """
        if (
            not _core.FASTPATH_ON
            or not _core.BATCH_ON
            or self._getters
            or self._putters
            or not self.items
        ):
            return None
        env = self.env
        if env.scheduler is not None:
            return None
        heap = env._heap
        if heap and heap[0][0] <= env._now:
            return None
        return self.items.popleft()

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit pending puts while there is room.
            while self._putters and (
                self.capacity is None or len(self.items) < self.capacity
            ):
                putter = self._putters.popleft()
                self.items.append(putter.item)
                putter.succeed()
                progress = True
            # Serve getters.
            for getter in list(self._getters):
                if getter.triggered:
                    self._getters.remove(getter)
                    continue
                item = self._match(getter)
                if item is not _NO_ITEM:
                    self._getters.remove(getter)
                    getter.succeed(item)
                    progress = True

    _NO_ITEM = object()

    def _match(self, getter: StoreGet) -> Any:
        if getter.predicate is None:
            if self.items:
                return self.items.popleft()
            return _NO_ITEM
        for index, item in enumerate(self.items):
            if getter.predicate(item):
                del self.items[index]
                return item
        return _NO_ITEM


#: Module-level sentinel shared by Store._match.
_NO_ITEM = Store._NO_ITEM


class ContainerGet(Event):
    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise SimulationError(f"get amount must be > 0, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._getters.append(self)
        container._dispatch()


class ContainerPut(Event):
    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise SimulationError(f"put amount must be > 0, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._putters.append(self)
        container._dispatch()


class Container:
    """A continuous quantity between 0 and ``capacity``."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be > 0, got {capacity}")
        if not 0 <= init <= capacity:
            raise SimulationError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: Deque[ContainerGet] = deque()
        self._putters: Deque[ContainerPut] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                putter = self._putters[0]
                if self._level + putter.amount <= self.capacity:
                    self._putters.popleft()
                    self._level += putter.amount
                    putter.succeed()
                    progress = True
            if self._getters:
                getter = self._getters[0]
                if self._level >= getter.amount:
                    self._getters.popleft()
                    self._level -= getter.amount
                    getter.succeed(getter.amount)
                    progress = True
