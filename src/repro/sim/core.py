"""Discrete-event simulation core.

This module implements a small, dependency-free discrete-event engine in
the style of SimPy: an :class:`Environment` owns a virtual clock and an
event heap; :class:`Process` objects are Python generators that ``yield``
events (most commonly :class:`Timeout`) and are resumed when those events
fire.

Time is a ``float`` in **microseconds** throughout the FluidMem
reproduction — the paper reports every latency in µs, so the calibration
constants can be used verbatim.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5.0)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
5.0
"""

from __future__ import annotations

import heapq
from typing import (
    Any,
    Callable,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

from ..errors import InterruptError, SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "PENDING",
]

#: Sentinel for an event value that has not been set yet.
PENDING = object()

#: Normal scheduling priority. Lower runs first at equal times.
PRIORITY_NORMAL = 1
#: Urgent priority, used for process initialization and interrupts.
PRIORITY_URGENT = 0


class Event:
    """An outcome that may happen at some point in simulated time.

    Events move through three states: *pending* (just created),
    *triggered* (scheduled on the environment's heap with a value), and
    *processed* (callbacks have run).  Processes wait on events by
    yielding them.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Set when a failure's exception has been handed to some consumer.
        self._defused = False

    # -- state predicates -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to fire successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to fire with ``exception``.

        Any process waiting on the event will have the exception thrown
        into it.  If nothing is waiting, the environment raises it at the
        end of the step so failures never pass silently.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the same outcome as ``event`` (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    def __repr__(self) -> str:
        status = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {status} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` µs after it is created."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Initialize(Event):
    """Internal event that starts a process on the next urgent step."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, priority=PRIORITY_URGENT)


class Interruption(Event):
    """Internal event that throws :class:`InterruptError` into a process."""

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.processed:
            raise SimulationError("cannot interrupt a finished process")
        if process is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.process = process
        self.callbacks.append(self._interrupt)
        self._ok = True
        self._value = InterruptError(cause)
        self.env._schedule(self, priority=PRIORITY_URGENT)

    def _interrupt(self, event: "Event") -> None:
        if self.process.processed:
            return  # finished before the interrupt was delivered
        # Detach the process from whatever it was waiting on.
        target = self.process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self.process._resume)
            except ValueError:
                pass
        self.process._target = None
        self.process._do_resume(throw=self._value)


class Process(Event):
    """A running generator.  Completes (as an event) when it returns.

    The generator yields :class:`Event` objects; each resumes the
    generator with the event's value when it fires (or throws the event's
    exception into it on failure).
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def name(self) -> str:
        return getattr(self._generator, "__name__", repr(self._generator))

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptError` into the process."""
        Interruption(self, cause)

    # -- generator driving -------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._do_resume(send=event._value)
        else:
            event._defused = True
            self._do_resume(throw=event._value)

    def _do_resume(
        self, send: Any = None, throw: Optional[BaseException] = None
    ) -> None:
        env = self.env
        prev_active = env.active_process
        env.active_process = self
        try:
            while True:
                try:
                    if throw is not None:
                        target = self._generator.throw(throw)
                    else:
                        target = self._generator.send(send)
                except StopIteration as stop:
                    self.succeed(getattr(stop, "value", None))
                    return
                except BaseException as exc:
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    self.fail(exc)
                    return

                send, throw = None, None
                if not isinstance(target, Event):
                    throw = SimulationError(
                        f"process {self.name!r} yielded a non-event: {target!r}"
                    )
                    continue
                if target.env is not env:
                    throw = SimulationError(
                        f"process {self.name!r} yielded an event from "
                        "another environment"
                    )
                    continue

                if target.callbacks is not None:
                    # Not yet processed: park until it fires.
                    target.callbacks.append(self._resume)
                    self._target = target
                    return
                # Already processed: continue immediately with its outcome.
                if target._ok:
                    send = target._value
                else:
                    target._defused = True
                    throw = target._value
        finally:
            env.active_process = prev_active

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._unfired = len(self._events)
        for event in self._events:
            if event.env is not env:
                raise SimulationError("condition mixes environments")
            if event.callbacks is None:
                self._observe(event)
            else:
                event.callbacks.append(self._observe)
        if not self.triggered:
            self._check_vacuous()

    def _check_vacuous(self) -> None:
        raise NotImplementedError

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._unfired -= 1
        self._on_fire(event)

    def _on_fire(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        # Only events that have actually fired (been processed) count;
        # a Timeout carries its value from creation but hasn't happened yet.
        return {
            ev: ev._value for ev in self._events if ev.processed and ev._ok
        }


class AnyOf(_Condition):
    """Fires when any constituent event fires (value: dict of done events)."""

    def _check_vacuous(self) -> None:
        if not self._events:
            self.succeed({})

    def _on_fire(self, event: Event) -> None:
        self.succeed(self._results())


class AllOf(_Condition):
    """Fires when all constituent events have fired."""

    def _check_vacuous(self) -> None:
        if self._unfired == 0:
            self.succeed(self._results())

    def _on_fire(self, event: Event) -> None:
        if self._unfired == 0:
            self.succeed(self._results())


class Environment:
    """The simulation environment: virtual clock plus event heap."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: List[Tuple[float, int, Any, Event]] = []
        self._seq = 0
        #: The process currently being resumed, if any.
        self.active_process: Optional[Process] = None
        #: Optional schedule-perturbation policy (an object with
        #: ``perturb_delay``/``tiebreak``, see repro.check.explorer).
        #: When None the engine behaves exactly as before: FIFO order
        #: among same-timestamp events, no delay perturbation.
        self.scheduler: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` µs from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        self._seq += 1
        tiebreak: Any = self._seq
        if self.scheduler is not None:
            delay = self.scheduler.perturb_delay(delay, priority, event)
            tiebreak = self.scheduler.tiebreak(
                self._now + delay, priority, self._seq, event
            )
        heapq.heappush(
            self._heap, (self._now + delay, priority, tiebreak, event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody consumed: surface it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run until the schedule drains, a time, or an event fires.

        ``until`` may be ``None`` (drain), a number (stop when the clock
        would pass it; the clock is then set to exactly that time), or an
        :class:`Event` (stop when it fires and return its value).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                # Already processed.
                if stop_event._ok:
                    return stop_event._value
                stop_event._defused = True
                raise stop_event._value
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        flag = {"stop": False}
        if stop_event is not None:
            stop_event.callbacks.append(lambda ev: flag.__setitem__("stop", True))

        while self._heap:
            if stop_time is not None and self._heap[0][0] > stop_time:
                self._now = stop_time
                return None
            self.step()
            if flag["stop"]:
                assert stop_event is not None
                if stop_event._ok:
                    return stop_event._value
                stop_event._defused = True
                raise stop_event._value

        if stop_event is not None:
            raise SimulationError(
                "schedule drained before the until-event fired"
            )
        if stop_time is not None:
            self._now = stop_time
        return None

    def advance(self, delta: float) -> None:
        """Advance the clock directly by ``delta`` µs.

        Used by workload drivers on their fast path (memory *hits*) to
        avoid creating one Timeout per access.  Only legal when no event
        earlier than the new time exists, otherwise causality would break.
        """
        if delta < 0:
            raise SimulationError(f"cannot advance by negative delta {delta}")
        target = self._now + delta
        if self._heap and self._heap[0][0] < target:
            raise SimulationError(
                "advance() would jump over a scheduled event; "
                "run() to that point instead"
            )
        self._now = target

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._heap)}>"
