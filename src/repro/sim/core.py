"""Discrete-event simulation core.

This module implements a small, dependency-free discrete-event engine in
the style of SimPy: an :class:`Environment` owns a virtual clock and an
event heap; :class:`Process` objects are Python generators that ``yield``
events (most commonly :class:`Timeout`) and are resumed when those events
fire.

Time is a ``float`` in **microseconds** throughout the FluidMem
reproduction — the paper reports every latency in µs, so the calibration
constants can be used verbatim.

Hot-path design (DESIGN.md §12)
-------------------------------
Workloads push millions of events through this engine, so the common
case — a :class:`Timeout` yielded by exactly one :class:`Process` —
is aggressively optimized:

* every event class uses ``__slots__`` (no per-event ``__dict__``);
* fire-once timeouts are recycled through a per-environment free list,
  so the dominant ``yield env.timeout(x)`` pattern allocates nothing
  at steady state;
* scheduling inlines the no-:attr:`Environment.scheduler` case (no
  perturb/tiebreak dispatch, module-level ``heappush``);
* :meth:`Environment.run` drives a local-variable event loop instead of
  calling :meth:`Environment.step` per event;
* :meth:`Environment.try_advance` lets callers replace a solo timeout
  with a direct clock bump when (and only when) the two are provably
  equivalent.

All of it is behavior-preserving: with a fixed seed the simulated-time
trajectory is byte-identical to the straightforward implementation, and
``set_fastpath(False)`` (or ``REPRO_SIM_FASTPATH=0``) forces the
straightforward paths for A/B measurement.  When a schedule-exploration
policy is installed on :attr:`Environment.scheduler`, the fast paths
disable themselves so the policy sees every scheduling decision.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5.0)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
5.0
"""

from __future__ import annotations

import heapq
import os
from itertools import count as _count
from typing import (
    Any,
    Callable,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

from ..errors import InterruptError, SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "PENDING",
    "set_fastpath",
    "fastpath_enabled",
    "set_batch",
    "batch_enabled",
]

#: Sentinel for an event value that has not been set yet.
PENDING = object()

#: Normal scheduling priority. Lower runs first at equal times.
PRIORITY_NORMAL = 1
#: Urgent priority, used for process initialization and interrupts.
PRIORITY_URGENT = 0

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Maximum recycled Timeout objects kept per environment.
_TIMEOUT_POOL_MAX = 1024

#: Module-wide fast-path switch (timeout pooling + try_advance).  Off
#: ≈ the pre-overhaul engine, for A/B wall-clock measurement and the
#: batching determinism pins.  Seeded runs produce byte-identical
#: simulated results either way — that equivalence is the fast-path
#: contract (DESIGN.md §12).
FASTPATH_ON = os.environ.get("REPRO_SIM_FASTPATH", "1").lower() not in (
    "0", "false", "off", "no",
)


def set_fastpath(enabled: bool) -> bool:
    """Toggle the engine fast paths; returns the previous setting."""
    global FASTPATH_ON
    previous = FASTPATH_ON
    FASTPATH_ON = bool(enabled)
    return previous


def fastpath_enabled() -> bool:
    """Current state of the module-wide fast-path switch."""
    return FASTPATH_ON


#: Module-wide batch-resolution switch (DESIGN.md §17).  Layered on top
#: of FASTPATH_ON: batch paths require *both* switches, so
#: ``REPRO_SIM_FASTPATH=0`` disables batching too, while
#: ``REPRO_SIM_BATCH=0`` isolates just the burst-resolution layer for
#: A/B measurement and the batch determinism pins.
BATCH_ON = os.environ.get("REPRO_SIM_BATCH", "1").lower() not in (
    "0", "false", "off", "no",
)


def set_batch(enabled: bool) -> bool:
    """Toggle the batch-resolution paths; returns the previous setting."""
    global BATCH_ON
    previous = BATCH_ON
    BATCH_ON = bool(enabled)
    return previous


def batch_enabled() -> bool:
    """Current state of the module-wide batch-resolution switch."""
    return BATCH_ON


class Event:
    """An outcome that may happen at some point in simulated time.

    Events move through three states: *pending* (just created),
    *triggered* (scheduled on the environment's heap with a value), and
    *processed* (callbacks have run).  Processes wait on events by
    yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Set when a failure's exception has been handed to some consumer.
        self._defused = False

    # -- state predicates -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to fire successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        if env.scheduler is None:
            # Inlined no-scheduler _schedule — succeed() is hot.
            _heappush(
                env._heap,
                (env._now, PRIORITY_NORMAL, next(env._seq), self),
            )
        else:
            env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to fire with ``exception``.

        Any process waiting on the event will have the exception thrown
        into it.  If nothing is waiting, the environment raises it at the
        end of the step so failures never pass silently.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the same outcome as ``event`` (callback helper)."""
        if event._value is PENDING:
            raise SimulationError(
                f"cannot trigger {self!r} from an untriggered event "
                f"{event!r}"
            )
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    def __repr__(self) -> str:
        status = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {status} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` µs after it is created."""

    __slots__ = ("delay", "poolable")

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Inlined Event.__init__ — this constructor is hot.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        #: Marked by Process._resume when the sole waiter is a parked
        #: process — the only shape safe to recycle (DESIGN.md §12).
        self.poolable = False
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Initialize(Event):
    """Internal event that starts a process on the next urgent step."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume_cb)
        self._ok = True
        self._value = None
        env._schedule(self, priority=PRIORITY_URGENT)


class Interruption(Event):
    """Internal event that throws :class:`InterruptError` into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.processed:
            raise SimulationError("cannot interrupt a finished process")
        if process is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.process = process
        self.callbacks.append(self._interrupt)
        # A failed event whose exception is pre-defused: _resume throws
        # it into the generator, which is the delivery we want.
        self._ok = False
        self._value = InterruptError(cause)
        self._defused = True
        self.env._schedule(self, priority=PRIORITY_URGENT)

    def _interrupt(self, event: "Event") -> None:
        if self.process.processed:
            return  # finished before the interrupt was delivered
        # Detach the process from whatever it was waiting on.
        target = self.process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self.process._resume_cb)
            except ValueError:
                pass
        self.process._resume(self)


class Process(Event):
    """A running generator.  Completes (as an event) when it returns.

    The generator yields :class:`Event` objects; each resumes the
    generator with the event's value when it fires (or throws the event's
    exception into it on failure).
    """

    __slots__ = ("_generator", "_target", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: Cached bound method: parking on an event happens once per
        #: yield, and rebuilding the bound method each time is garbage.
        self._resume_cb = self._resume
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def name(self) -> str:
        return getattr(self._generator, "__name__", repr(self._generator))

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptError` into the process."""
        Interruption(self, cause)

    # -- generator driving -------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Resume the generator with ``event``'s outcome and keep driving
        it until it parks on a pending event or finishes.

        This is the single hottest function in the engine — it is the
        callback for every parked process, runs once per fired event,
        and deliberately has no helper-call indirection.
        """
        self._target = None
        if event._ok:
            send: Any = event._value
            throw: Optional[BaseException] = None
        else:
            event._defused = True
            send, throw = None, event._value
        env = self.env
        generator = self._generator
        prev_active = env.active_process
        env.active_process = self
        try:
            while True:
                try:
                    if throw is None:
                        target = generator.send(send)
                    else:
                        target = generator.throw(throw)
                except StopIteration as stop:
                    self.succeed(getattr(stop, "value", None))
                    return
                except BaseException as exc:
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    self.fail(exc)
                    return

                if type(target) is Timeout or isinstance(target, Event):
                    callbacks = target.callbacks
                    if callbacks is not None:
                        # Hot path: a pending event — park until it
                        # fires.  A Timeout we are the only waiter of is
                        # safe to recycle once it fires.
                        if target.env is env:
                            if not callbacks and type(target) is Timeout:
                                target.poolable = True
                            callbacks.append(self._resume_cb)
                            self._target = target
                            return
                        send, throw = None, SimulationError(
                            f"process {self.name!r} yielded an event "
                            "from another environment"
                        )
                        continue
                    if target.env is not env:
                        send, throw = None, SimulationError(
                            f"process {self.name!r} yielded an event "
                            "from another environment"
                        )
                        continue
                    # Already processed: continue with its outcome.
                    if target._ok:
                        send, throw = target._value, None
                    else:
                        target._defused = True
                        send, throw = None, target._value
                    continue
                send, throw = None, SimulationError(
                    f"process {self.name!r} yielded a non-event: "
                    f"{target!r}"
                )
        finally:
            env.active_process = prev_active

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("_events", "_unfired")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._unfired = len(self._events)
        for event in self._events:
            if event.env is not env:
                raise SimulationError("condition mixes environments")
            if event.callbacks is None:
                self._observe(event)
            else:
                event.callbacks.append(self._observe)
        if not self.triggered:
            self._check_vacuous()

    def _check_vacuous(self) -> None:
        raise NotImplementedError

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._unfired -= 1
        self._on_fire(event)

    def _on_fire(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        # Only events that have actually fired (been processed) count;
        # a Timeout carries its value from creation but hasn't happened yet.
        return {
            ev: ev._value for ev in self._events if ev.processed and ev._ok
        }


class AnyOf(_Condition):
    """Fires when any constituent event fires (value: dict of done events)."""

    __slots__ = ()

    def _check_vacuous(self) -> None:
        if not self._events:
            self.succeed({})

    def _on_fire(self, event: Event) -> None:
        self.succeed(self._results())


class AllOf(_Condition):
    """Fires when all constituent events have fired."""

    __slots__ = ()

    def _check_vacuous(self) -> None:
        if self._unfired == 0:
            self.succeed(self._results())

    def _on_fire(self, event: Event) -> None:
        if self._unfired == 0:
            self.succeed(self._results())


class Environment:
    """The simulation environment: virtual clock plus event heap."""

    __slots__ = (
        "_now",
        "_heap",
        "_seq",
        "active_process",
        "scheduler",
        "_timeout_pool",
        "_until_cap",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: List[Tuple[float, int, Any, Event]] = []
        #: Monotonic tiebreaker for FIFO ordering of equal-time events.
        self._seq = _count(1)
        #: The process currently being resumed, if any.
        self.active_process: Optional[Process] = None
        #: Optional schedule-perturbation policy (an object with
        #: ``perturb_delay``/``tiebreak``, see repro.check.explorer).
        #: When None the engine behaves exactly as before: FIFO order
        #: among same-timestamp events, no delay perturbation.  Setting
        #: a policy also disables the fast paths (timeout pooling and
        #: try_advance) so the policy sees every scheduling decision.
        self.scheduler: Optional[Any] = None
        #: Recycled fire-once Timeouts (see DESIGN.md §12).
        self._timeout_pool: List[Timeout] = []
        #: Upper clock bound while inside ``run(until=<time>)``; guards
        #: try_advance against overshooting the stop time.
        self._until_cap: Optional[float] = None

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` µs from now."""
        if self.scheduler is None:
            if delay < 0:
                raise SimulationError(f"negative timeout delay {delay!r}")
            pool = self._timeout_pool
            if pool:
                # Recycled events come back with their (cleared)
                # callbacks list attached and _ok/_defused already in
                # the fired-successfully shape; only value, delay and
                # the poolable mark need refreshing.
                event = pool.pop()
                event._value = value
                event.delay = delay
            else:
                # Inlined Timeout construction (no __init__ dispatch).
                event = Timeout.__new__(Timeout)
                event.env = self
                event.callbacks = []
                event._value = value
                event._ok = True
                event._defused = False
                event.delay = delay
                event.poolable = False
            _heappush(
                self._heap,
                (self._now + delay, PRIORITY_NORMAL, next(self._seq), event),
            )
            return event
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        seq = next(self._seq)
        if self.scheduler is None:
            # Fast path: FIFO tiebreak, no perturbation dispatch.
            _heappush(
                self._heap, (self._now + delay, priority, seq, event)
            )
            return
        delay = self.scheduler.perturb_delay(delay, priority, event)
        tiebreak = self.scheduler.tiebreak(
            self._now + delay, priority, seq, event
        )
        _heappush(
            self._heap, (self._now + delay, priority, tiebreak, event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _seq, event = _heappop(self._heap)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody consumed: surface it.
            raise event._value
        self._maybe_recycle(event, callbacks)

    def _maybe_recycle(self, event: Event, callbacks: list) -> None:
        """Return a fire-once process Timeout to the free list.

        Only the dominant ``yield env.timeout(x)`` shape qualifies: the
        exact Timeout type whose single callback is a parked process
        (``poolable`` is set by :meth:`Process._resume` at park time,
        and only when it was the first waiter).  Conditions and explicit
        waiters keep references to the event (``processed``/``value``
        stay readable), so they never recycle.  The callbacks list is
        cleared and rides along with the pooled event, so reuse
        allocates nothing.
        """
        if (
            FASTPATH_ON
            and type(event) is Timeout
            and event.poolable
            and len(callbacks) == 1
            and len(self._timeout_pool) < _TIMEOUT_POOL_MAX
        ):
            event.poolable = False
            callbacks.clear()
            event.callbacks = callbacks
            self._timeout_pool.append(event)

    def run(self, until: Any = None) -> Any:
        """Run until the schedule drains, a time, or an event fires.

        ``until`` may be ``None`` (drain), a number (stop when the clock
        would pass it; the clock is then set to exactly that time), or an
        :class:`Event` (stop when it fires and return its value).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                # Already processed.
                if stop_event._ok:
                    return stop_event._value
                stop_event._defused = True
                raise stop_event._value
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        heap = self._heap
        pool = self._timeout_pool
        # Pool headroom doubles as the fast-path switch: 0 disables.
        pool_room = _TIMEOUT_POOL_MAX if FASTPATH_ON else 0

        if stop_event is None and stop_time is None:
            # Drain fast path: the dominant mode — hoisted locals, no
            # per-event step() dispatch, inline timeout recycling.
            while heap:
                when, _prio, _seq, event = _heappop(heap)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                if type(event) is Timeout and len(callbacks) == 1:
                    # Dominant shape: a timeout (always ok, never
                    # defused) waking one parked process — no iterator,
                    # no failure bookkeeping.
                    callbacks[0](event)
                    if event.poolable and len(pool) < pool_room:
                        event.poolable = False
                        callbacks.clear()
                        event.callbacks = callbacks
                        pool.append(event)
                    continue
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            return None

        # General loop: a stop time and/or a stop event is in play.
        # Stop-event completion is detected via its processed state
        # (callbacks is None), so nothing is ever attached to — or left
        # dangling on — stop_event.callbacks, whatever the exit path.
        self._until_cap = stop_time
        try:
            while heap:
                if stop_time is not None and heap[0][0] > stop_time:
                    self._now = stop_time
                    return None
                when, _prio, _seq, event = _heappop(heap)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if event._ok:
                    self._maybe_recycle(event, callbacks)
                elif not event._defused:
                    raise event._value
                if stop_event is not None and stop_event.callbacks is None:
                    if stop_event._ok:
                        return stop_event._value
                    stop_event._defused = True
                    raise stop_event._value
        finally:
            self._until_cap = None

        if stop_event is not None:
            raise SimulationError(
                "schedule drained before the until-event fired"
            )
        if stop_time is not None:
            self._now = stop_time
        return None

    def advance(self, delta: float) -> None:
        """Advance the clock directly by ``delta`` µs.

        Used by workload drivers on their fast path (memory *hits*) to
        avoid creating one Timeout per access.  Only legal when no event
        earlier than the new time exists, otherwise causality would break.
        """
        if delta < 0:
            raise SimulationError(f"cannot advance by negative delta {delta}")
        target = self._now + delta
        if self._heap and self._heap[0][0] < target:
            raise SimulationError(
                "advance() would jump over a scheduled event; "
                "run() to that point instead"
            )
        self._now = target

    def sync_to(self, time: float) -> None:
        """Set the clock to the **absolute** time ``time`` (µs).

        The synchronization primitive of the sharded fleet runner
        (``repro.parallel.fleet``): after a barrier, every partition's
        environment is snapped to the coordinator's clock so the next
        window starts from bit-identical ``now`` values.  Like
        :meth:`advance`, it is only legal when the jump skips no
        scheduled event; going backwards is never legal.
        """
        if time < self._now:
            raise SimulationError(
                f"sync_to({time}) would move the clock backwards "
                f"from {self._now}"
            )
        if self._heap and self._heap[0][0] < time:
            raise SimulationError(
                "sync_to() would jump over a scheduled event; "
                "run() to that point instead"
            )
        self._now = time

    def try_advance(self, delta: float) -> bool:
        """Bump the clock by ``delta`` iff it is provably equivalent to
        ``yield env.timeout(delta)`` for the calling process.

        Equivalence requires that the hypothetical timeout would have
        been the *only* event to fire before its own deadline: no heap
        entry at or before ``now + delta`` (strictly — an equal-time
        event would have fired first, FIFO), no schedule-exploration
        policy installed (it must see every scheduling decision), no
        ``run(until=<time>)`` stop time that the bump would overshoot,
        and the fast paths enabled.  Returns False when any of that
        fails; callers then fall back to a real timeout.
        """
        if not FASTPATH_ON or self.scheduler is not None or delta < 0.0:
            return False
        target = self._now + delta
        heap = self._heap
        if heap and heap[0][0] <= target:
            return False
        cap = self._until_cap
        if cap is not None and target > cap:
            return False
        self._now = target
        return True

    def batch_window(self) -> bool:
        """True iff a *batch window* is open: the engine can prove that
        no other event could fire between now and any future clock
        position reached by pure advances.

        The window requires an **empty heap** (nothing at all is
        scheduled, so no event can interleave at any future time), no
        schedule-exploration policy, no ``run(until=<time>)`` cap, and
        both the fast-path and batch switches on.  Inside an open window
        a cohort of N homogeneous operations may be resolved in one
        pass — one clock advance for the summed cost, pre-drawn RNG
        samples, bulk metrics observes — because the granular path's
        intermediate yields provably could not have run anything else
        (DESIGN.md §17).  Callers must check the window *before*
        consuming RNG draws for the cohort.
        """
        return (
            FASTPATH_ON
            and BATCH_ON
            and self.scheduler is None
            and not self._heap
            and self._until_cap is None
        )

    def try_advance_batch(self, target: float) -> bool:
        """Jump the clock to the **absolute** time ``target`` iff a
        batch window is open (see :meth:`batch_window`).

        This is the commit half of cohort resolution: the caller checks
        :meth:`batch_window`, accumulates ``target`` from :attr:`now` by
        adding each member's cost *in cohort order* (bit-identical to
        the float sequence N granular :meth:`try_advance` calls would
        have produced — summing the costs first and adding once would
        not be, float addition being non-associative), then commits
        here.  The empty-heap window guarantees each granular advance
        would have succeeded, so the jump is provably equivalent.
        Returns False (mutating nothing) when the window is closed or
        ``target`` is in the past.
        """
        if (
            not FASTPATH_ON
            or not BATCH_ON
            or self.scheduler is not None
            or target < self._now
            or self._heap
            or self._until_cap is not None
        ):
            return False
        self._now = target
        return True

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._heap)}>"
