"""Deterministic random-number streams.

Simulations must be reproducible: the same seed must yield the same
trajectory regardless of which subsystems are enabled.  To that end each
consumer asks :class:`RandomStreams` for a *named* stream; the child seed
is derived from the root seed and the name, so adding a new consumer never
perturbs existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and ``name``.

    Uses BLAKE2b so the mapping is stable across Python versions and
    processes (unlike ``hash()``).
    """
    digest = hashlib.blake2b(
        name.encode("utf-8"),
        digest_size=8,
        key=root_seed.to_bytes(8, "little", signed=False),
    ).digest()
    return int.from_bytes(digest, "little")


class RandomStreams:
    """A registry of named, independently seeded ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """A child registry whose root is derived from ``name``."""
        return RandomStreams(derive_seed(self.seed, name))

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self.seed} streams={len(self._streams)}>"
