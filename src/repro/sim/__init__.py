"""Discrete-event simulation substrate.

The engine (:mod:`repro.sim.core`) keeps virtual time in microseconds.
Resources, deterministic RNG streams, and measurement helpers live in
sibling modules and are re-exported here.
"""

from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Process,
    Timeout,
    batch_enabled,
    fastpath_enabled,
    set_batch,
    set_fastpath,
)
from .randomness import RandomStreams, derive_seed
from .resources import Container, Resource, Store
from .stats import (
    Cdf,
    CounterSet,
    LatencyRecorder,
    TimeSeries,
    harmonic_mean,
    percentile,
)

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "AnyOf",
    "AllOf",
    "set_fastpath",
    "fastpath_enabled",
    "set_batch",
    "batch_enabled",
    "Resource",
    "Store",
    "Container",
    "RandomStreams",
    "derive_seed",
    "LatencyRecorder",
    "TimeSeries",
    "CounterSet",
    "Cdf",
    "percentile",
    "harmonic_mean",
]
