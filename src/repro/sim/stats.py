"""Measurement utilities: latency recorders, CDFs, time series.

Everything the benchmark harness reports — Figure 3's CDFs, Table I's
avg/stdev/99th columns, Figure 5's latency-vs-time traces — is produced
by the classes in this module, so the harness code stays declarative.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "percentile",
    "harmonic_mean",
    "LatencyRecorder",
    "TimeSeries",
    "CounterSet",
    "Cdf",
]


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100] of ``samples``.

    Matches ``numpy.percentile``'s default ('linear') method.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    interpolated = ordered[low] * (1.0 - frac) + ordered[high] * frac
    # Guard against float rounding drifting outside the bracket.
    return min(max(interpolated, ordered[low]), ordered[high])


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean, as Graph500 uses to aggregate TEPS across trials."""
    if not values:
        raise ValueError("harmonic mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


class Cdf:
    """An empirical CDF over a sample set."""

    def __init__(self, samples: Sequence[float]) -> None:
        if not samples:
            raise ValueError("CDF of empty sample set")
        self._sorted = sorted(samples)

    def fraction_below(self, x: float) -> float:
        """Fraction of samples <= x."""
        lo, hi = 0, len(self._sorted)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._sorted[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(self._sorted)

    def quantile(self, fraction: float) -> float:
        """Smallest sample value with at least ``fraction`` mass below."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        index = min(
            len(self._sorted) - 1,
            max(0, math.ceil(fraction * len(self._sorted)) - 1),
        )
        return self._sorted[index]

    def points(self, count: int = 100) -> List[Tuple[float, float]]:
        """(value, fraction) pairs suitable for plotting, ``count`` of them."""
        if count < 2:
            raise ValueError("need at least 2 points")
        n = len(self._sorted)
        points = []
        for i in range(count):
            idx = round(i * (n - 1) / (count - 1))
            points.append((self._sorted[idx], (idx + 1) / n))
        return points


class LatencyRecorder:
    """Accumulates latency samples for one labelled measurement point.

    Keeps raw samples (bounded by ``max_samples`` with reservoir-free
    head-keep: summary stats stay exact via running accumulators even
    when raw-sample retention is capped).
    """

    __slots__ = (
        "name",
        "max_samples",
        "_samples",
        "_count",
        "_sum",
        "_welford_mean",
        "_welford_m2",
        "_min",
        "_max",
    )

    def __init__(self, name: str, max_samples: Optional[int] = None) -> None:
        self.name = name
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._count = 0
        self._sum = 0.0
        # Welford running moments: numerically stable for near-constant
        # streams, unlike the sum-of-squares formula.
        self._welford_mean = 0.0
        self._welford_m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative latency {value} for {self.name!r}")
        count = self._count + 1
        self._count = count
        self._sum += value
        delta = value - self._welford_mean
        mean = self._welford_mean + delta / count
        self._welford_mean = mean
        self._welford_m2 += delta * (value - mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        samples = self._samples
        max_samples = self.max_samples
        if max_samples is None or len(samples) < max_samples:
            samples.append(value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError(f"no samples recorded for {self.name!r}")
        return self._sum / self._count

    @property
    def stdev(self) -> float:
        if self._count < 2:
            return 0.0
        return math.sqrt(max(0.0, self._welford_m2 / (self._count - 1)))

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValueError(f"no samples recorded for {self.name!r}")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValueError(f"no samples recorded for {self.name!r}")
        return self._max

    def percentile(self, q: float) -> float:
        return percentile(self._samples, q)

    def cdf(self) -> Cdf:
        return Cdf(self._samples)

    @property
    def samples(self) -> Sequence[float]:
        """Retained raw samples (all of them unless ``max_samples`` hit)."""
        return tuple(self._samples)

    def export_state(self) -> Dict[str, object]:
        """Picklable snapshot of the full recorder state.

        Includes the running accumulators alongside the retained raw
        samples, so a recorder whose retention hit ``max_samples`` can
        still be moved between processes without losing the exact
        count/mean/stdev.  Not JSON-safe (``min``/``max`` may be
        infinite on an empty recorder); intended for pickle transport.
        """
        return {
            "samples": list(self._samples),
            "count": self._count,
            "sum": self._sum,
            "welford_mean": self._welford_mean,
            "welford_m2": self._welford_m2,
            "min": self._min,
            "max": self._max,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Install a state exported by :meth:`export_state`.

        Only valid on a recorder that has not seen any samples yet —
        merging two live recorders exactly is not possible once either
        has dropped raw samples.
        """
        if self._count:
            raise ValueError(
                f"cannot restore state onto non-empty recorder {self.name!r}"
            )
        self._samples = [float(v) for v in state["samples"]]
        self._count = int(state["count"])
        self._sum = float(state["sum"])
        self._welford_mean = float(state["welford_mean"])
        self._welford_m2 = float(state["welford_m2"])
        self._min = float(state["min"])
        self._max = float(state["max"])

    def summary(self) -> Dict[str, float]:
        """Dict matching Table I's columns: avg, stdev, p99."""
        return {
            "count": float(self._count),
            "avg": self.mean,
            "stdev": self.stdev,
            "p99": self.percentile(99.0),
            "min": self.minimum,
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        if self._count == 0:
            return f"<LatencyRecorder {self.name!r} empty>"
        return (
            f"<LatencyRecorder {self.name!r} n={self._count} "
            f"avg={self.mean:.2f}us>"
        )


class TimeSeries:
    """(time, value) pairs, e.g. Figure 5's latency-vs-runtime traces."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"time going backwards in series {self.name!r}: "
                f"{time} < {self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> Sequence[float]:
        return tuple(self._times)

    @property
    def values(self) -> Sequence[float]:
        return tuple(self._values)

    def mean(self) -> float:
        if not self._values:
            raise ValueError(f"empty series {self.name!r}")
        return sum(self._values) / len(self._values)

    def bucketed(self, bucket_width: float) -> List[Tuple[float, float]]:
        """Average values into fixed-width time buckets (for plotting)."""
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        if not self._times:
            return []
        buckets: Dict[int, List[float]] = {}
        for t, v in zip(self._times, self._values):
            buckets.setdefault(int(t // bucket_width), []).append(v)
        return [
            (index * bucket_width, sum(vals) / len(vals))
            for index, vals in sorted(buckets.items())
        ]


class CounterSet:
    """Named monotonic counters (fault counts, evictions, steals, ...)."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def incr(self, name: str, by: int = 1) -> None:
        if by < 0:
            raise ValueError("counters are monotonic; use a new counter")
        try:
            self._counts[name] += by
        except KeyError:
            self._counts[name] = by

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:
        return f"<CounterSet {self._counts!r}>"
