"""The ``repro-scenario/1`` schema: strict validation with suggestions.

A scenario document is plain JSON.  Validation is *strict*: every
unknown field is an error (with a did-you-mean suggestion when a known
field is close), every value is type- and range-checked, and every name
drawn from a vocabulary — scenario kinds, bench platforms, fault plans,
allocation and prefetch policies, workload patterns — is checked
against the live registry it compiles into, so a scenario cannot name a
policy the :mod:`repro.policy` registries do not hold.

All issues are collected in document order and raised as one
:class:`~repro.errors.ScenarioError`, each line carrying the JSON path
(``workload.tenants[2].pattern.theta``) of the offending field — the
format the golden-file tests pin.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ScenarioError
from ..faults import NAMED_PLANS
from ..policy.registry import ALLOCATION_POLICIES, PREFETCH_POLICIES

__all__ = [
    "SCENARIO_SCHEMA",
    "REPORT_SCHEMA",
    "SCENARIO_KINDS",
    "PATTERN_KINDS",
    "LOAD_KINDS",
    "PolicySpec",
    "SingleVmSpec",
    "ClusterSpec",
    "MarketSpec",
    "SpikeSpec",
    "LoadSpec",
    "PatternSpec",
    "FleetTenantSpec",
    "FleetChaosSpec",
    "FleetSpec",
    "Scenario",
    "validate_document",
    "validate_report",
    "load_scenario",
]

#: Version tag every scenario document must carry.
SCENARIO_SCHEMA = "repro-scenario/1"
#: Version tag of the KPI report ``run`` emits.
REPORT_SCHEMA = "repro-scenario-metrics/1"

#: The four scenario kinds and what they compile into.
SCENARIO_KINDS = ("single-vm", "cluster", "market", "fleet")
#: Access-pattern kinds a fleet tenant may declare.
PATTERN_KINDS = ("zipfian", "uniform", "sweep", "mixed")
#: Load-profile kinds (how a tenant's access rate varies over ticks).
LOAD_KINDS = ("constant", "diurnal")

_SINGLE_VM_ENGINES = ("pmbench",)


# ---------------------------------------------------------------------------
# Compiled scenario dataclasses
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PolicySpec:
    """The policy combo compiled into :class:`~repro.core.FluidMemConfig`."""

    alloc: str = "lifo"
    prefetch: str = "sequential"
    prefetch_pages: int = 0
    fault_handlers: int = 1


@dataclass(frozen=True)
class SingleVmSpec:
    """One platform, one VM, one measured workload (Figure-3 shape)."""

    platform: str = "fluidmem-ramcloud"
    memory_scale_denom: int = 1024
    remote_factor: int = 4
    engine: str = "pmbench"
    wss_dram_fraction: float = 2.0
    read_ratio: float = 0.5
    accesses: int = 20_000
    quick_accesses: int = 2_000
    fault_plan: Optional[str] = None


@dataclass(frozen=True)
class ClusterSpec:
    """Shard scale-out + crash recovery (the ``cluster`` experiment)."""

    max_nodes: int = 8
    replication: int = 2
    pages: int = 2_000
    quick_pages: int = 400


@dataclass(frozen=True)
class MarketSpec:
    """The multi-tenant marketplace fleet (the ``market`` experiment)."""

    fleet_scale: int = 4
    quick_fleet_scale: int = 2
    ticks: int = 90
    quick_ticks: int = 18
    chaos: bool = True


@dataclass(frozen=True)
class SpikeSpec:
    """A short load spike on top of a tenant's base profile."""

    at_tick: int
    multiplier: float
    duration_ticks: int = 2

    def covers(self, tick: int) -> bool:
        return self.at_tick <= tick < self.at_tick + self.duration_ticks


@dataclass(frozen=True)
class LoadSpec:
    """How a tenant's access rate varies over the run."""

    kind: str = "constant"
    period_ticks: int = 48
    peak_multiplier: float = 3.0
    spikes: Tuple[SpikeSpec, ...] = ()


@dataclass(frozen=True)
class PatternSpec:
    """Which pages a tenant touches."""

    kind: str = "zipfian"
    theta: float = 0.99
    stride: int = 1
    shuffle_every_ticks: int = 0
    zipf_fraction: float = 0.8


@dataclass(frozen=True)
class FleetTenantSpec:
    """One named group of identical scenario-fleet VMs."""

    name: str
    vms: int
    footprint_pages: int
    capacity_pages: int
    accesses_per_tick: int = 24
    quick_vms: int = 0  # 0 = derived: max(1, vms // 4)
    pattern: PatternSpec = field(default_factory=PatternSpec)
    load: LoadSpec = field(default_factory=LoadSpec)

    def vm_count(self, quick: bool) -> int:
        if not quick:
            return self.vms
        return self.quick_vms or max(1, self.vms // 4)


@dataclass(frozen=True)
class FleetChaosSpec:
    """Seeded fleet chaos: fail-stop crashes and demand surges."""

    crash_fraction: float = 0.0
    surge_fraction: float = 0.0

    @property
    def enabled(self) -> bool:
        return self.crash_fraction > 0 or self.surge_fraction > 0


@dataclass(frozen=True)
class FleetSpec:
    """The scenario-owned fleet engine (:mod:`repro.scenario.workloads`)."""

    tenants: Tuple[FleetTenantSpec, ...]
    ticks: int = 96
    quick_ticks: int = 24
    tick_us: float = 10_000.0
    block_vms: int = 8
    chaos: FleetChaosSpec = field(default_factory=FleetChaosSpec)

    def tick_count(self, quick: bool) -> int:
        return self.quick_ticks if quick else self.ticks


@dataclass(frozen=True)
class Scenario:
    """One validated scenario document, ready to compile and run."""

    name: str
    kind: str
    seed: int = 42
    description: str = ""
    policy: PolicySpec = field(default_factory=PolicySpec)
    invariants: bool = True
    trace_enabled: bool = True
    single_vm: Optional[SingleVmSpec] = None
    cluster: Optional[ClusterSpec] = None
    market: Optional[MarketSpec] = None
    fleet: Optional[FleetSpec] = None


# ---------------------------------------------------------------------------
# Validation machinery
# ---------------------------------------------------------------------------

class _Issues:
    """Ordered issue collector; one ScenarioError at the end."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lines: List[str] = []

    def error(self, path: str, message: str) -> None:
        self.lines.append(f"{path}: {message}")

    def raise_if_any(self) -> None:
        if not self.lines:
            return
        noun = "issue" if len(self.lines) == 1 else "issues"
        body = "\n".join(f"  - {line}" for line in self.lines)
        raise ScenarioError(
            f"scenario {self.name!r} is invalid "
            f"({len(self.lines)} {noun}):\n{body}"
        )


def _suggest(word: str, options: Sequence[str]) -> str:
    """``"  Did you mean 'x'?"`` when a close known name exists."""
    close = difflib.get_close_matches(
        str(word), sorted(options), n=1, cutoff=0.6
    )
    return f"  Did you mean {close[0]!r}?" if close else ""


def _check_keys(
    issues: _Issues, path: str, doc: Dict[str, object],
    known: Sequence[str],
) -> None:
    for key in doc:
        if key not in known:
            suggestion = _suggest(key, known)
            issues.error(
                _join(path, str(key)),
                f"unknown field.{suggestion}" if suggestion
                else f"unknown field (known fields: "
                     f"{', '.join(sorted(known))})",
            )


def _join(path: str, key: str) -> str:
    return f"{path}.{key}" if path else key


def _get(
    issues: _Issues, path: str, doc: Dict[str, object], key: str,
    types, default, type_label: str, required: bool = False,
):
    """Fetch + type-check one field; returns the default on any issue."""
    if key not in doc:
        if required:
            issues.error(_join(path, key), "required field is missing")
        return default
    value = doc[key]
    # bool is an int subclass; never let true/false satisfy an int slot.
    if isinstance(value, bool) and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        issues.error(
            _join(path, key),
            f"expected {type_label}, got a boolean",
        )
        return default
    if not isinstance(value, types):
        issues.error(
            _join(path, key),
            f"expected {type_label}, got {type(value).__name__}",
        )
        return default
    return value


def _get_str(issues, path, doc, key, default="", required=False) -> str:
    return _get(issues, path, doc, key, str, default, "a string",
                required=required)


def _get_int(
    issues, path, doc, key, default, minimum=None, maximum=None,
    required=False,
) -> int:
    value = _get(issues, path, doc, key, int, default, "an integer",
                 required=required)
    if minimum is not None and value < minimum:
        issues.error(_join(path, key), f"must be >= {minimum}, got {value}")
        return default
    if maximum is not None and value > maximum:
        issues.error(_join(path, key), f"must be <= {maximum}, got {value}")
        return default
    return value


def _get_float(
    issues, path, doc, key, default, minimum=None, maximum=None,
    exclusive_min=False,
) -> float:
    value = _get(issues, path, doc, key, (int, float), default, "a number")
    value = float(value)
    if minimum is not None:
        bad = value <= minimum if exclusive_min else value < minimum
        if bad:
            op = ">" if exclusive_min else ">="
            issues.error(_join(path, key), f"must be {op} {minimum}, "
                                           f"got {value}")
            return float(default)
    if maximum is not None and value > maximum:
        issues.error(_join(path, key), f"must be <= {maximum}, got {value}")
        return float(default)
    return value


def _get_bool(issues, path, doc, key, default) -> bool:
    return _get(issues, path, doc, key, bool, default, "a boolean")


def _get_choice(
    issues, path, doc, key, options: Sequence[str], default: str,
    noun: str, required: bool = False,
) -> str:
    value = _get_str(issues, path, doc, key, default, required=required)
    if key in doc and isinstance(doc[key], str) and value not in options:
        issues.error(
            _join(path, key),
            f"unknown {noun} {value!r}.{_suggest(value, options)}"
            if _suggest(value, options) else
            f"unknown {noun} {value!r} (choose from "
            f"{', '.join(sorted(options))})",
        )
        return default
    return value


def _get_section(
    issues, path, doc, key, required=False,
) -> Optional[Dict[str, object]]:
    """An object-valued section; ``None`` when absent/null/mistyped."""
    if key not in doc or doc[key] is None:
        if required:
            issues.error(_join(path, key), "required section is missing")
        return None
    value = doc[key]
    if not isinstance(value, dict):
        issues.error(
            _join(path, key),
            f"expected an object, got {type(value).__name__}",
        )
        return None
    return value


# ---------------------------------------------------------------------------
# Section validators
# ---------------------------------------------------------------------------

def _validate_policy(issues: _Issues, doc: Dict[str, object]) -> PolicySpec:
    path = "policy"
    _check_keys(issues, path, doc,
                ("alloc", "prefetch", "prefetch_pages", "fault_handlers"))
    alloc = _get_choice(
        issues, path, doc, "alloc", tuple(sorted(ALLOCATION_POLICIES)),
        "lifo", "allocation policy",
    )
    prefetch = _get_choice(
        issues, path, doc, "prefetch", PREFETCH_POLICIES,
        "sequential", "prefetch policy",
    )
    prefetch_pages = _get_int(issues, path, doc, "prefetch_pages", 0,
                              minimum=0, maximum=64)
    handlers = _get_int(issues, path, doc, "fault_handlers", 1,
                        minimum=1, maximum=64)
    if prefetch == "none" and prefetch_pages > 0:
        issues.error(
            f"{path}.prefetch_pages",
            "prefetch policy 'none' cannot take a positive depth",
        )
        prefetch_pages = 0
    return PolicySpec(
        alloc=alloc, prefetch=prefetch,
        prefetch_pages=prefetch_pages, fault_handlers=handlers,
    )


def _validate_single_vm(
    issues: _Issues,
    topology: Optional[Dict[str, object]],
    workload: Optional[Dict[str, object]],
    faults: Optional[Dict[str, object]],
) -> SingleVmSpec:
    from ..bench.platform import PLATFORM_NAMES

    defaults = SingleVmSpec()
    platform = defaults.platform
    scale_denom = defaults.memory_scale_denom
    remote_factor = defaults.remote_factor
    if topology is not None:
        path = "topology"
        _check_keys(issues, path, topology,
                    ("platform", "memory_scale_denom", "remote_factor"))
        platform = _get_choice(
            issues, path, topology, "platform", PLATFORM_NAMES,
            defaults.platform, "platform",
        )
        scale_denom = _get_int(
            issues, path, topology, "memory_scale_denom",
            defaults.memory_scale_denom, minimum=1, maximum=65_536,
        )
        remote_factor = _get_int(
            issues, path, topology, "remote_factor",
            defaults.remote_factor, minimum=1, maximum=64,
        )
    engine = defaults.engine
    wss = defaults.wss_dram_fraction
    read_ratio = defaults.read_ratio
    accesses = defaults.accesses
    quick_accesses = defaults.quick_accesses
    if workload is not None:
        path = "workload"
        _check_keys(issues, path, workload,
                    ("engine", "wss_dram_fraction", "read_ratio",
                     "accesses", "quick_accesses"))
        engine = _get_choice(
            issues, path, workload, "engine", _SINGLE_VM_ENGINES,
            defaults.engine, "workload engine",
        )
        wss = _get_float(issues, path, workload, "wss_dram_fraction",
                         defaults.wss_dram_fraction, minimum=0.0,
                         exclusive_min=True, maximum=64.0)
        read_ratio = _get_float(issues, path, workload, "read_ratio",
                                defaults.read_ratio, minimum=0.0,
                                maximum=1.0)
        accesses = _get_int(issues, path, workload, "accesses",
                            defaults.accesses, minimum=1)
        quick_accesses = _get_int(issues, path, workload, "quick_accesses",
                                  defaults.quick_accesses, minimum=1)
    fault_plan = None
    if faults is not None:
        path = "faults"
        _check_keys(issues, path, faults, ("plan",))
        fault_plan = _get_choice(
            issues, path, faults, "plan", tuple(sorted(NAMED_PLANS)),
            "", "fault plan", required=True,
        ) or None
    return SingleVmSpec(
        platform=platform,
        memory_scale_denom=scale_denom,
        remote_factor=remote_factor,
        engine=engine,
        wss_dram_fraction=wss,
        read_ratio=read_ratio,
        accesses=accesses,
        quick_accesses=quick_accesses,
        fault_plan=fault_plan,
    )


def _validate_cluster(
    issues: _Issues,
    topology: Optional[Dict[str, object]],
    workload: Optional[Dict[str, object]],
) -> ClusterSpec:
    defaults = ClusterSpec()
    max_nodes = defaults.max_nodes
    replication = defaults.replication
    if topology is not None:
        path = "topology"
        _check_keys(issues, path, topology, ("max_nodes", "replication"))
        max_nodes = _get_int(issues, path, topology, "max_nodes",
                             defaults.max_nodes, minimum=2, maximum=64)
        replication = _get_int(issues, path, topology, "replication",
                               defaults.replication, minimum=1, maximum=4)
    pages = defaults.pages
    quick_pages = defaults.quick_pages
    if workload is not None:
        path = "workload"
        _check_keys(issues, path, workload, ("pages", "quick_pages"))
        pages = _get_int(issues, path, workload, "pages", defaults.pages,
                         minimum=1)
        quick_pages = _get_int(issues, path, workload, "quick_pages",
                               defaults.quick_pages, minimum=1)
    return ClusterSpec(max_nodes=max_nodes, replication=replication,
                       pages=pages, quick_pages=quick_pages)


def _validate_market(
    issues: _Issues,
    topology: Optional[Dict[str, object]],
    workload: Optional[Dict[str, object]],
) -> MarketSpec:
    defaults = MarketSpec()
    fleet_scale = defaults.fleet_scale
    quick_fleet_scale = defaults.quick_fleet_scale
    if topology is not None:
        path = "topology"
        _check_keys(issues, path, topology,
                    ("fleet_scale", "quick_fleet_scale"))
        fleet_scale = _get_int(issues, path, topology, "fleet_scale",
                               defaults.fleet_scale, minimum=1, maximum=64)
        quick_fleet_scale = _get_int(
            issues, path, topology, "quick_fleet_scale",
            defaults.quick_fleet_scale, minimum=1, maximum=64,
        )
    ticks = defaults.ticks
    quick_ticks = defaults.quick_ticks
    chaos = defaults.chaos
    if workload is not None:
        path = "workload"
        _check_keys(issues, path, workload,
                    ("ticks", "quick_ticks", "chaos"))
        ticks = _get_int(issues, path, workload, "ticks", defaults.ticks,
                         minimum=1)
        quick_ticks = _get_int(issues, path, workload, "quick_ticks",
                               defaults.quick_ticks, minimum=1)
        chaos = _get_bool(issues, path, workload, "chaos", defaults.chaos)
    return MarketSpec(
        fleet_scale=fleet_scale, quick_fleet_scale=quick_fleet_scale,
        ticks=ticks, quick_ticks=quick_ticks, chaos=chaos,
    )


def _validate_pattern(
    issues: _Issues, path: str, doc: Dict[str, object],
) -> PatternSpec:
    _check_keys(issues, path, doc,
                ("kind", "theta", "stride", "shuffle_every_ticks",
                 "zipf_fraction"))
    kind = _get_choice(issues, path, doc, "kind", PATTERN_KINDS,
                       "zipfian", "pattern kind", required=True)
    theta = _get_float(issues, path, doc, "theta", 0.99,
                       minimum=0.0, exclusive_min=True)
    if "theta" in doc and isinstance(doc["theta"], (int, float)) \
            and not isinstance(doc["theta"], bool) and theta >= 1.0:
        issues.error(_join(path, "theta"),
                     f"Zipf theta must be in (0, 1), got {theta}")
        theta = 0.99
    stride = _get_int(issues, path, doc, "stride", 1, minimum=1,
                      maximum=1_024)
    shuffle = _get_int(issues, path, doc, "shuffle_every_ticks", 0,
                       minimum=0)
    zipf_fraction = _get_float(issues, path, doc, "zipf_fraction", 0.8,
                               minimum=0.0, maximum=1.0)
    for key, owners in (("theta", ("zipfian", "mixed")),
                        ("stride", ("sweep",)),
                        ("shuffle_every_ticks", ("sweep",)),
                        ("zipf_fraction", ("mixed",))):
        if key in doc and kind not in owners:
            issues.error(
                _join(path, key),
                f"only valid for pattern kind(s) "
                f"{', '.join(repr(o) for o in owners)}, not {kind!r}",
            )
    return PatternSpec(kind=kind, theta=theta, stride=stride,
                       shuffle_every_ticks=shuffle,
                       zipf_fraction=zipf_fraction)


def _validate_load(
    issues: _Issues, path: str, doc: Dict[str, object],
) -> LoadSpec:
    _check_keys(issues, path, doc,
                ("kind", "period_ticks", "peak_multiplier", "spikes"))
    kind = _get_choice(issues, path, doc, "kind", LOAD_KINDS,
                       "constant", "load profile", required=True)
    period = _get_int(issues, path, doc, "period_ticks", 48, minimum=2)
    peak = _get_float(issues, path, doc, "peak_multiplier", 3.0,
                      minimum=1.0, maximum=64.0)
    for key in ("period_ticks", "peak_multiplier"):
        if key in doc and kind != "diurnal":
            issues.error(_join(path, key),
                         "only valid for load kind 'diurnal'")
    spikes: List[SpikeSpec] = []
    raw_spikes = doc.get("spikes", [])
    if not isinstance(raw_spikes, list):
        issues.error(_join(path, "spikes"),
                     f"expected a list, got {type(raw_spikes).__name__}")
        raw_spikes = []
    for index, raw in enumerate(raw_spikes):
        spike_path = f"{path}.spikes[{index}]"
        if not isinstance(raw, dict):
            issues.error(spike_path,
                         f"expected an object, got {type(raw).__name__}")
            continue
        _check_keys(issues, spike_path, raw,
                    ("at_tick", "multiplier", "duration_ticks"))
        spikes.append(SpikeSpec(
            at_tick=_get_int(issues, spike_path, raw, "at_tick", 0,
                             minimum=0, required=True),
            multiplier=_get_float(issues, spike_path, raw, "multiplier",
                                  2.0, minimum=1.0, maximum=64.0),
            duration_ticks=_get_int(issues, spike_path, raw,
                                    "duration_ticks", 2, minimum=1),
        ))
    return LoadSpec(kind=kind, period_ticks=period, peak_multiplier=peak,
                    spikes=tuple(spikes))


def _validate_fleet(
    issues: _Issues,
    topology: Optional[Dict[str, object]],
    workload: Optional[Dict[str, object]],
    duration: Optional[Dict[str, object]],
    faults: Optional[Dict[str, object]],
) -> FleetSpec:
    defaults = FleetSpec(tenants=())
    block_vms = defaults.block_vms
    if topology is not None:
        path = "topology"
        _check_keys(issues, path, topology, ("block_vms",))
        block_vms = _get_int(issues, path, topology, "block_vms",
                             defaults.block_vms, minimum=1, maximum=256)
    ticks = defaults.ticks
    quick_ticks = defaults.quick_ticks
    tick_us = defaults.tick_us
    if duration is not None:
        path = "duration"
        _check_keys(issues, path, duration,
                    ("ticks", "quick_ticks", "tick_us"))
        ticks = _get_int(issues, path, duration, "ticks", defaults.ticks,
                         minimum=1)
        quick_ticks = _get_int(issues, path, duration, "quick_ticks",
                               defaults.quick_ticks, minimum=1)
        tick_us = _get_float(issues, path, duration, "tick_us",
                             defaults.tick_us, minimum=0.0,
                             exclusive_min=True)
    tenants: List[FleetTenantSpec] = []
    if workload is None:
        issues.error("workload", "required section is missing "
                                 "(a fleet scenario needs tenants)")
    else:
        _check_keys(issues, "workload", workload, ("tenants",))
        raw_tenants = workload.get("tenants")
        if raw_tenants is None:
            issues.error("workload.tenants", "required field is missing")
            raw_tenants = []
        elif not isinstance(raw_tenants, list):
            issues.error(
                "workload.tenants",
                f"expected a list, got {type(raw_tenants).__name__}",
            )
            raw_tenants = []
        elif not raw_tenants:
            issues.error("workload.tenants",
                         "a fleet scenario needs at least one tenant")
        seen = set()
        for index, raw in enumerate(raw_tenants):
            tenant_path = f"workload.tenants[{index}]"
            if not isinstance(raw, dict):
                issues.error(
                    tenant_path,
                    f"expected an object, got {type(raw).__name__}",
                )
                continue
            _check_keys(issues, tenant_path, raw,
                        ("name", "vms", "quick_vms", "footprint_pages",
                         "capacity_pages", "accesses_per_tick",
                         "pattern", "load"))
            name = _get_str(issues, tenant_path, raw, "name",
                            f"tenant{index}", required=True)
            if name in seen:
                issues.error(_join(tenant_path, "name"),
                             f"duplicate tenant name {name!r}")
            seen.add(name)
            footprint = _get_int(issues, tenant_path, raw,
                                 "footprint_pages", 256, minimum=16,
                                 required=True)
            capacity = _get_int(issues, tenant_path, raw,
                                "capacity_pages", 128, minimum=16,
                                required=True)
            if capacity > footprint:
                issues.error(
                    _join(tenant_path, "capacity_pages"),
                    f"capacity ({capacity}) cannot exceed footprint "
                    f"({footprint})",
                )
                capacity = footprint
            pattern_doc = _get_section(issues, tenant_path, raw, "pattern")
            load_doc = _get_section(issues, tenant_path, raw, "load")
            tenants.append(FleetTenantSpec(
                name=name,
                vms=_get_int(issues, tenant_path, raw, "vms", 1,
                             minimum=1, maximum=4_096, required=True),
                quick_vms=_get_int(issues, tenant_path, raw, "quick_vms",
                                   0, minimum=0, maximum=4_096),
                footprint_pages=footprint,
                capacity_pages=capacity,
                accesses_per_tick=_get_int(issues, tenant_path, raw,
                                           "accesses_per_tick", 24,
                                           minimum=1, maximum=10_000),
                pattern=_validate_pattern(
                    issues, _join(tenant_path, "pattern"), pattern_doc
                ) if pattern_doc is not None else PatternSpec(),
                load=_validate_load(
                    issues, _join(tenant_path, "load"), load_doc
                ) if load_doc is not None else LoadSpec(),
            ))
    chaos = FleetChaosSpec()
    if faults is not None:
        path = "faults"
        _check_keys(issues, path, faults,
                    ("crash_fraction", "surge_fraction"))
        chaos = FleetChaosSpec(
            crash_fraction=_get_float(issues, path, faults,
                                      "crash_fraction", 0.0, minimum=0.0,
                                      maximum=0.9),
            surge_fraction=_get_float(issues, path, faults,
                                      "surge_fraction", 0.0, minimum=0.0,
                                      maximum=0.9),
        )
    return FleetSpec(
        tenants=tuple(tenants),
        ticks=ticks, quick_ticks=quick_ticks, tick_us=tick_us,
        block_vms=block_vms, chaos=chaos,
    )


# ---------------------------------------------------------------------------
# Document validation
# ---------------------------------------------------------------------------

_TOP_LEVEL_KEYS = (
    "schema", "name", "description", "kind", "seed",
    "topology", "workload", "duration", "policy", "faults",
    "checks", "obs",
)

#: Which optional sections each kind understands.
_KIND_SECTIONS = {
    "single-vm": ("topology", "workload", "policy", "faults"),
    "cluster": ("topology", "workload"),
    "market": ("topology", "workload", "checks"),
    "fleet": ("topology", "workload", "duration", "faults", "checks"),
}


def validate_document(doc: object) -> Scenario:
    """Validate one parsed scenario document into a :class:`Scenario`.

    Raises :class:`~repro.errors.ScenarioError` listing every issue
    with its JSON path; returns the compiled scenario otherwise.
    """
    if not isinstance(doc, dict):
        raise ScenarioError(
            f"scenario document must be a JSON object, got "
            f"{type(doc).__name__}"
        )
    name = doc.get("name")
    issues = _Issues(name if isinstance(name, str) and name else "<unnamed>")
    _check_keys(issues, "", doc, _TOP_LEVEL_KEYS)
    schema = _get_str(issues, "", doc, "schema", "", required=True)
    if "schema" in doc and isinstance(doc["schema"], str) \
            and schema != SCENARIO_SCHEMA:
        issues.error(
            "schema",
            f"unsupported schema {schema!r} (this loader speaks "
            f"{SCENARIO_SCHEMA!r})",
        )
    name = _get_str(issues, "", doc, "name", "<unnamed>", required=True)
    if name != "<unnamed>" and not all(
        c.isalnum() or c in "-_" for c in name
    ):
        issues.error("name", f"must be alphanumeric/dash/underscore, "
                             f"got {name!r}")
    description = _get_str(issues, "", doc, "description", "")
    kind = _get_choice(issues, "", doc, "kind", SCENARIO_KINDS, "",
                       "scenario kind", required=True)
    seed = _get_int(issues, "", doc, "seed", 42, minimum=0)

    if kind:
        allowed = _KIND_SECTIONS[kind]
        for section in ("topology", "workload", "duration", "policy",
                        "faults", "checks"):
            if section in doc and doc[section] is not None \
                    and section not in allowed:
                issues.error(
                    section,
                    f"section is not valid for kind {kind!r} (it takes: "
                    f"{', '.join(allowed)})",
                )

    topology = _get_section(issues, "", doc, "topology")
    workload = _get_section(issues, "", doc, "workload")
    duration = _get_section(issues, "", doc, "duration")
    faults = _get_section(issues, "", doc, "faults")

    policy = PolicySpec()
    policy_doc = _get_section(issues, "", doc, "policy")
    if policy_doc is not None and kind == "single-vm":
        policy = _validate_policy(issues, policy_doc)

    invariants = True
    checks_doc = _get_section(issues, "", doc, "checks")
    if checks_doc is not None:
        _check_keys(issues, "checks", checks_doc, ("invariants",))
        invariants = _get_bool(issues, "checks", checks_doc,
                               "invariants", True)
        if kind == "market" and not invariants:
            issues.error(
                "checks.invariants",
                "the marketplace broker is audited on every run; "
                "invariants cannot be disabled for kind 'market'",
            )
            invariants = True

    trace_enabled = True
    obs_doc = _get_section(issues, "", doc, "obs")
    if obs_doc is not None:
        _check_keys(issues, "obs", obs_doc, ("trace",))
        trace_enabled = _get_bool(issues, "obs", obs_doc, "trace", True)

    single_vm = cluster = market = fleet = None
    if kind == "single-vm":
        single_vm = _validate_single_vm(issues, topology, workload, faults)
    elif kind == "cluster":
        cluster = _validate_cluster(issues, topology, workload)
    elif kind == "market":
        market = _validate_market(issues, topology, workload)
    elif kind == "fleet":
        fleet = _validate_fleet(issues, topology, workload, duration,
                                faults)

    issues.raise_if_any()
    return Scenario(
        name=name,
        kind=kind,
        seed=seed,
        description=description,
        policy=policy,
        invariants=invariants,
        trace_enabled=trace_enabled,
        single_vm=single_vm,
        cluster=cluster,
        market=market,
        fleet=fleet,
    )


#: The top-level keys every ``repro-scenario-metrics/1`` report carries.
_REPORT_KEYS = (
    "schema", "scenario", "kind", "seed", "quick", "description",
    "kpis", "groups",
)


def validate_report(document: object) -> None:
    """Check a KPI report against the ``repro-scenario-metrics/1``
    layout; raises :class:`~repro.errors.ScenarioError` on mismatch."""
    if not isinstance(document, dict):
        raise ScenarioError(
            f"report must be a JSON object, got {type(document).__name__}"
        )
    missing = [key for key in _REPORT_KEYS if key not in document]
    if missing:
        raise ScenarioError(
            f"report is missing fields: {', '.join(missing)}"
        )
    if document["schema"] != REPORT_SCHEMA:
        raise ScenarioError(
            f"unsupported report schema {document['schema']!r} "
            f"(expected {REPORT_SCHEMA!r})"
        )
    if document["kind"] not in SCENARIO_KINDS:
        raise ScenarioError(
            f"report names unknown kind {document['kind']!r}"
        )
    if not isinstance(document["kpis"], dict) or not document["kpis"]:
        raise ScenarioError("report 'kpis' must be a non-empty object")
    if not isinstance(document["groups"], dict):
        raise ScenarioError("report 'groups' must be an object")


def load_scenario(path: str) -> Scenario:
    """Read, parse, and validate a scenario file."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario {path!r}: {exc}") \
            from exc
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"scenario {path!r} is not valid JSON: {exc}") \
            from exc
    return validate_document(doc)
