"""Compile a validated :class:`Scenario` onto the stack and run it.

Each scenario kind maps onto an existing engine:

``single-vm``
    :func:`repro.bench.platform.build_platform` + a
    :class:`~repro.workloads.Pmbench` measurement pass, with the
    scenario's policy combo compiled into a
    :class:`~repro.core.FluidMemConfig` and its fault plan passed to
    the platform builder.
``cluster``
    :func:`repro.bench.cluster_scaleout.run_cluster`.
``market``
    :func:`repro.bench.market_fleet.run_market` (``--partitions``
    shards the fleet; the broker's invariant audit always runs).
``fleet``
    the scenario-owned engine in :mod:`repro.scenario.workloads`,
    fanned out over :func:`repro.parallel.run_tasks` (``--workers``).

The outcome's ``report`` is the ``repro-scenario-metrics/1`` document:
scenario identity, flat KPIs, and per-group breakdowns.  Nothing in it
depends on wall-clock time, worker count, or partition count — that is
the byte-identity contract the tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import FluidMemConfig
from ..obs import NULL_OBS, EventTracer, Observability
from ..parallel import run_tasks
from .schema import REPORT_SCHEMA, Scenario
from .workloads import (
    fleet_payloads,
    histogram_percentile,
    merge_block_results,
    run_fleet_block,
)

__all__ = ["ScenarioOutcome", "run_scenario"]


@dataclass
class ScenarioOutcome:
    """One completed scenario run: the KPI report plus its trace."""

    scenario: Scenario
    report: Dict[str, object]
    tracer: Optional[EventTracer] = None

    @property
    def kpis(self) -> Dict[str, object]:
        return self.report["kpis"]


def _round6(value: float) -> float:
    """Fixed rounding for every float KPI: one canonical repr per
    value, so reports diff cleanly and byte-identity pins hold."""
    return round(float(value), 6)


def _base_report(scenario: Scenario, quick: bool) -> Dict[str, object]:
    return {
        "schema": REPORT_SCHEMA,
        "scenario": scenario.name,
        "kind": scenario.kind,
        "seed": scenario.seed,
        "quick": quick,
        "description": scenario.description,
    }


# ---------------------------------------------------------------------------
# single-vm
# ---------------------------------------------------------------------------

def _run_single_vm(
    scenario: Scenario, quick: bool, obs: Observability
) -> Dict[str, object]:
    from ..bench.platform import build_platform
    from ..workloads import Pmbench, PmbenchConfig

    spec = scenario.single_vm
    policy = scenario.policy
    config = FluidMemConfig(
        alloc_policy=policy.alloc,
        prefetch_policy=policy.prefetch,
        prefetch_pages=policy.prefetch_pages,
        fault_handlers=policy.fault_handlers,
    )
    platform = build_platform(
        spec.platform,
        memory_scale=1.0 / spec.memory_scale_denom,
        seed=scenario.seed,
        remote_factor=spec.remote_factor,
        fluidmem_config=config,
        faults=spec.fault_plan,
        obs=obs,
    )
    accesses = spec.quick_accesses if quick else spec.accesses
    bench = Pmbench(
        platform.env,
        platform.port,
        platform.workload_base,
        PmbenchConfig(
            wss_pages=platform.shape.wss_pages(spec.wss_dram_fraction),
            read_ratio=spec.read_ratio,
            measured_accesses=accesses,
        ),
        rng=platform.streams.stream("pmbench"),
    )
    result = platform.run(bench.run())
    samples = sorted(result.all_samples)
    total = result.hits + result.faults

    def percentile(fraction: float) -> float:
        if not samples:
            return 0.0
        index = min(len(samples) - 1, int(fraction * len(samples)))
        return samples[index]

    report = _base_report(scenario, quick)
    report["kpis"] = {
        "accesses": total,
        "hits": result.hits,
        "faults": result.faults,
        "hit_pct": _round6(100.0 * result.hit_fraction),
        "avg_latency_us": _round6(result.average_latency_us),
        "p50_latency_us": _round6(percentile(0.50)),
        "p99_latency_us": _round6(percentile(0.99)),
    }
    report["groups"] = {
        "platform": {
            spec.platform: {
                "fault_plan": spec.fault_plan or "none",
                "alloc": policy.alloc,
                "prefetch": policy.prefetch,
            }
        }
    }
    return report


# ---------------------------------------------------------------------------
# cluster
# ---------------------------------------------------------------------------

def _run_cluster(
    scenario: Scenario, quick: bool
) -> Dict[str, object]:
    from ..bench.cluster_scaleout import run_cluster

    spec = scenario.cluster
    result = run_cluster(
        pages=spec.quick_pages if quick else spec.pages,
        max_nodes=spec.max_nodes,
        replication=spec.replication,
        seed=scenario.seed,
    )
    final = result.rows_data[-1]
    report = _base_report(scenario, quick)
    report["kpis"] = {
        "nodes": spec.max_nodes,
        "total_keys": result.total_keys,
        "final_balance_ratio": _round6(final.ratio),
        "keys_moved": sum(row.keys_moved for row in result.rows_data),
        "recovery_us": _round6(result.recovery_us),
        "keys_re_replicated": result.keys_re_replicated,
        "keys_lost": result.keys_lost,
        "read_back_ok": result.read_back_ok,
    }
    report["groups"] = {
        "scaleout": {
            str(row.nodes): {
                "balance_ratio": _round6(row.ratio),
                "keys_moved": row.keys_moved,
                "settle_us": _round6(row.settle_us),
            }
            for row in result.rows_data
        }
    }
    return report


# ---------------------------------------------------------------------------
# market
# ---------------------------------------------------------------------------

def _run_market(
    scenario: Scenario, quick: bool, partitions: int
) -> Dict[str, object]:
    from ..bench.market_fleet import run_market

    spec = scenario.market
    result = run_market(
        fleet_scale=spec.quick_fleet_scale if quick else spec.fleet_scale,
        ticks=spec.quick_ticks if quick else spec.ticks,
        seed=scenario.seed,
        chaos=spec.chaos,
        partitions=partitions,
    )
    report = _base_report(scenario, quick)
    report["kpis"] = {
        "vms": result.total_vms,
        "ticks": result.ticks,
        "faults": sum(row.faults for row in result.rows_data),
        "remote_hits": sum(row.remote_hits for row in result.rows_data),
        "swap_faults": sum(row.swap_faults for row in result.rows_data),
        "deaths": sum(row.deaths for row in result.rows_data),
        "slo_violations": sum(
            row.violations for row in result.rows_data
        ),
        "pages_granted": result.pages_granted,
        "grants": result.grants,
        "revocations": result.revocations,
        "lease_rejections": result.lease_rejections,
        "vm_crashes": result.vm_crashes,
        "spot_price_final": _round6(result.spot_price_final),
        "invariant_violations": result.invariant_violations,
    }
    report["groups"] = {
        "tenant": {
            row.tenant: {
                "role": row.role,
                "vms": row.vms,
                "p99_us": _round6(row.p99_us),
                "slo_violations": row.violations,
                "faults": row.faults,
                "remote_hits": row.remote_hits,
                "swap_faults": row.swap_faults,
                "deaths": row.deaths,
            }
            for row in result.rows_data
        }
    }
    return report


# ---------------------------------------------------------------------------
# fleet
# ---------------------------------------------------------------------------

def _run_fleet(
    scenario: Scenario, quick: bool, workers: int,
    tracer: Optional[EventTracer],
) -> Dict[str, object]:
    spec = scenario.fleet
    payloads = fleet_payloads(
        spec, scenario.seed, quick, scenario.invariants
    )
    results = run_tasks(
        run_fleet_block, payloads, workers=workers, seed=scenario.seed
    )
    merged = merge_block_results(results, spec, quick)

    ticks = spec.tick_count(quick)
    per_tick: List[int] = merged["per_tick_faults"]
    tenants: Dict[str, Dict[str, int]] = merged["tenants"]
    accesses = sum(stats["accesses"] for stats in tenants.values())
    hits = sum(stats["hits"] for stats in tenants.values())
    faults = sum(stats["faults"] for stats in tenants.values())
    peak = max(per_tick) if per_tick else 0
    mean = faults / ticks if ticks else 0.0

    if tracer is not None:
        _replay_fleet_trace(tracer, spec.tick_us, per_tick,
                            merged["events"])

    report = _base_report(scenario, quick)
    report["kpis"] = {
        "vms": sum(stats["vms"] for stats in tenants.values()),
        "ticks": ticks,
        "accesses": accesses,
        "hits": hits,
        "faults": faults,
        "hit_pct": _round6(100.0 * hits / accesses if accesses else 0.0),
        "first_touches": sum(
            stats["first_touches"] for stats in tenants.values()
        ),
        "swap_faults": sum(
            stats["swap_faults"] for stats in tenants.values()
        ),
        "deaths": sum(stats["deaths"] for stats in tenants.values()),
        "surge_ticks": sum(
            stats["surge_ticks"] for stats in tenants.values()
        ),
        "p50_latency_us": _round6(
            histogram_percentile(merged["histogram"], 0.50)
        ),
        "p99_latency_us": _round6(
            histogram_percentile(merged["histogram"], 0.99)
        ),
        "peak_tick_faults": peak,
        "mean_tick_faults": _round6(mean),
        "peak_to_mean": _round6(peak / mean if mean else 0.0),
        "invariant_audits": merged["audits"],
    }
    report["groups"] = {
        "tenant": {
            name: {
                "vms": stats["vms"],
                "accesses": stats["accesses"],
                "hits": stats["hits"],
                "faults": stats["faults"],
                "hit_pct": _round6(
                    100.0 * stats["hits"] / stats["accesses"]
                    if stats["accesses"] else 0.0
                ),
                "swap_faults": stats["swap_faults"],
                "deaths": stats["deaths"],
                "surge_ticks": stats["surge_ticks"],
            }
            for name, stats in tenants.items()
        }
    }
    return report


def _replay_fleet_trace(
    tracer: EventTracer,
    tick_us: float,
    per_tick_faults: List[int],
    events: List[Tuple[int, str, str]],
) -> None:
    """Rebuild the merged run as a replayable event trace.

    The blocks already merged deterministically, so the parent can
    emit one canonical trace regardless of how the fleet was split.
    """
    for tick, count in enumerate(per_tick_faults):
        tracer.instant(
            "tick", tick * tick_us, cat="fleet", track="fleet",
            tick=tick, faults=count,
        )
    for tick, kind, vm in events:
        tracer.instant(
            kind, tick * tick_us, cat="chaos", track="chaos", vm=vm,
        )


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def run_scenario(
    scenario: Scenario,
    quick: bool = False,
    workers: int = 1,
    partitions: int = 1,
    obs: Optional[Observability] = None,
) -> ScenarioOutcome:
    """Run one scenario and assemble its KPI report.

    ``workers`` parallelizes ``fleet`` scenarios over the process pool;
    ``partitions`` shards ``market`` scenarios.  Both are execution
    details: the report is byte-identical at any value.
    """
    from ..bench.platform import (
        default_observability,
        set_default_observability,
    )

    tracer: Optional[EventTracer] = None
    if obs is None:
        if scenario.trace_enabled:
            tracer = EventTracer()
            obs = Observability(tracer=tracer)
        else:
            obs = NULL_OBS
    else:
        tracer = obs.tracer if obs.enabled else None

    previous = default_observability()
    set_default_observability(obs)
    try:
        if scenario.kind == "single-vm":
            report = _run_single_vm(scenario, quick, obs)
        elif scenario.kind == "cluster":
            report = _run_cluster(scenario, quick)
        elif scenario.kind == "market":
            report = _run_market(scenario, quick, partitions)
        else:
            report = _run_fleet(scenario, quick, workers, tracer)
    finally:
        set_default_observability(previous)
    return ScenarioOutcome(
        scenario=scenario, report=report, tracer=tracer
    )
