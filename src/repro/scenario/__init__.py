"""Declarative scenario platform: experiments as data, not modules.

Every experiment in :mod:`repro.bench` is hand-coded Python; this
package makes the next hundred workloads *data files*.  A scenario is a
JSON document against the strict ``repro-scenario/1`` schema — topology,
VM fleet, workload mix, fault plan, policy combo, check/obs switches —
validated with precise per-path errors and did-you-mean suggestions,
compiled onto the existing stack (:mod:`repro.bench.platform`,
:class:`~repro.core.FluidMemConfig`, :class:`~repro.faults.FaultPlan`,
:mod:`repro.policy`, the :mod:`repro.parallel` pool), and run by the
campaign CLI::

    python -m repro.scenario list
    python -m repro.scenario validate scenarios/*.json
    python -m repro.scenario run web-diurnal --quick --workers 4 \
        --report report.json --trace trace.json
    python -m repro.scenario report report.json

Every run emits a ``repro-scenario-metrics/1`` KPI report and, on
request, a replayable ``chrome://tracing`` trace via the existing
:mod:`repro.obs` tracer.  Runs are determinism-pinned: identical
scenario + seed produce a byte-identical report at any ``--workers`` /
``--partitions`` count.
"""

from __future__ import annotations

from .schema import (
    REPORT_SCHEMA,
    SCENARIO_KINDS,
    SCENARIO_SCHEMA,
    Scenario,
    load_scenario,
    validate_document,
    validate_report,
)
from .runner import ScenarioOutcome, run_scenario

__all__ = [
    "REPORT_SCHEMA",
    "SCENARIO_KINDS",
    "SCENARIO_SCHEMA",
    "Scenario",
    "ScenarioOutcome",
    "load_scenario",
    "run_scenario",
    "validate_document",
    "validate_report",
]
