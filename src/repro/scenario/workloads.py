"""The scenario fleet engine: many small VMs, declarative behavior.

The ``fleet`` scenario kind runs a fleet of lightweight VMs whose
access pattern (Zipfian / uniform / sweep / mixed), load profile
(constant / diurnal with spikes), and chaos (seeded crash and surge
windows) all come from the scenario document — no per-workload Python.
Each VM keeps its resident pages on a real kernel
:class:`~repro.kernel.ActiveInactiveLists` (the same aging mechanism
:mod:`repro.market` fleets use), so hit rates emerge from second-chance
reclaim rather than being declared.

Determinism is the contract.  A VM's RNG is derived from its *name*
(``derive_seed(seed, "vm:<name>")``), its chaos windows from
``derive_seed(seed, "chaos:<name>")``, and all cross-VM aggregation is
integer-only (counts and fixed log-bucket latency histograms), so any
partitioning of the fleet over :func:`repro.parallel.run_tasks` workers
merges to byte-identical results.  :func:`run_fleet_block` is the
module-level worker entry point: a pure function of its payload.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from ..errors import InvariantViolation
from ..kernel import ActiveInactiveLists
from ..mem import PAGE_SIZE, Page
from ..sim import derive_seed
from ..workloads.ycsb import ZipfianGenerator
from .schema import FleetChaosSpec, FleetSpec, FleetTenantSpec

__all__ = [
    "FIRST_TOUCH_US",
    "SWAP_FAULT_US",
    "LATENCY_BUCKETS_US",
    "FleetVM",
    "fleet_vm_names",
    "fleet_payloads",
    "run_fleet_block",
    "merge_block_results",
    "histogram_percentile",
]

#: Modeled fault latencies (µs), matching the market fleet's scale:
#: a first touch is a zero-fill, a refault pays the far-memory path.
FIRST_TOUCH_US = 4.0
SWAP_FAULT_US = 150.0

#: Per-tick fault queueing: every earlier fault in the same tick adds
#: 2% service delay, capped at 4x — a deterministic stand-in for fault
#: handler contention under bursty load.
_QUEUE_SLOPE = 0.02
_QUEUE_CAP = 3.0

#: Fixed log2 bucket upper edges (µs) for fault latencies.  Integer
#: counts per bucket merge across workers by plain addition, which is
#: what keeps reports byte-identical at any worker count.
LATENCY_BUCKETS_US = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
    256.0, 512.0, 1024.0, 2048.0,
)


def _bucket_index(latency_us: float) -> int:
    for index, edge in enumerate(LATENCY_BUCKETS_US):
        if latency_us <= edge:
            return index
    return len(LATENCY_BUCKETS_US) - 1


def histogram_percentile(counts: List[int], fraction: float) -> float:
    """The bucket upper edge covering the ``fraction`` quantile."""
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = fraction * total
    seen = 0
    for index, count in enumerate(counts):
        seen += count
        if seen >= rank:
            return LATENCY_BUCKETS_US[index]
    return LATENCY_BUCKETS_US[-1]


# ---------------------------------------------------------------------------
# Chaos windows
# ---------------------------------------------------------------------------

def _chaos_windows(
    seed: int, name: str, chaos: FleetChaosSpec, ticks: int
) -> Tuple[Optional[Tuple[int, int]], Optional[Tuple[int, int]]]:
    """This VM's (crash, surge) tick windows, or ``None`` for each.

    Derived from the VM's *name*, never from fleet position, so any
    partitioning of the fleet replays identical chaos.  The draw order
    is fixed (crash decision, crash shape, surge decision, surge shape)
    so a window's placement depends only on seed + name + durations.
    """
    rng = random.Random(derive_seed(seed, f"chaos:{name}"))
    crash = surge = None
    crash_roll = rng.random()
    start = 1 + rng.randrange(max(1, ticks - 1))
    duration = 1 + rng.randrange(max(1, ticks // 8))
    if chaos.crash_fraction > 0 and crash_roll < chaos.crash_fraction:
        crash = (start, min(ticks, start + duration))
    surge_roll = rng.random()
    start = 1 + rng.randrange(max(1, ticks - 1))
    duration = 2 + rng.randrange(max(1, ticks // 4))
    if chaos.surge_fraction > 0 and surge_roll < chaos.surge_fraction:
        surge = (start, min(ticks, start + duration))
    return crash, surge


def _covers(window: Optional[Tuple[int, int]], tick: int) -> bool:
    return window is not None and window[0] <= tick < window[1]


# ---------------------------------------------------------------------------
# The VM
# ---------------------------------------------------------------------------

class FleetVM:
    """One scenario-fleet VM: declared pattern over a real aging LRU."""

    def __init__(
        self,
        name: str,
        spec: FleetTenantSpec,
        seed: int,
        ticks: int,
        chaos: FleetChaosSpec,
    ) -> None:
        self.name = name
        self.spec = spec
        self.rng = random.Random(derive_seed(seed, f"vm:{name}"))
        self.lists = ActiveInactiveLists()
        self.pages: Dict[int, Page] = {}
        self.dead = False
        self.surging = False
        pattern = spec.pattern
        self.zipf: Optional[ZipfianGenerator] = None
        if pattern.kind in ("zipfian", "mixed"):
            self.zipf = ZipfianGenerator(
                spec.footprint_pages, self.rng, theta=pattern.theta
            )
        self._sweep_pos = 0
        self.crash_window, self.surge_window = _chaos_windows(
            seed, name, chaos, ticks
        )
        # Integer counters only: cross-worker merges must be exact.
        self.accesses = 0
        self.hits = 0
        self.faults = 0
        self.first_touches = 0
        self.swap_faults = 0
        self.deaths = 0
        self.surge_ticks = 0

    # -- pattern draws ------------------------------------------------------

    def _next_page(self, tick: int) -> int:
        pattern = self.spec.pattern
        footprint = self.spec.footprint_pages
        if self.surging:
            return self.rng.randrange(footprint)
        if pattern.kind == "zipfian":
            return self.zipf.next() % footprint
        if pattern.kind == "uniform":
            return self.rng.randrange(footprint)
        if pattern.kind == "mixed":
            if self.rng.random() < pattern.zipf_fraction:
                return self.zipf.next() % footprint
            return self.rng.randrange(footprint)
        # sweep: a strided pass over the footprint, the ML-training
        # shape — every page is equally cold by the time it comes back.
        page = self._sweep_pos
        self._sweep_pos = (self._sweep_pos + pattern.stride) % footprint
        return page

    def _load_multiplier(self, tick: int) -> float:
        load = self.spec.load
        multiplier = 1.0
        if load.kind == "diurnal":
            phase = 2.0 * math.pi * tick / load.period_ticks
            multiplier += (load.peak_multiplier - 1.0) * (
                0.5 - 0.5 * math.cos(phase)
            )
        for spike in load.spikes:
            if spike.covers(tick):
                multiplier *= spike.multiplier
        return multiplier

    # -- lifecycle ----------------------------------------------------------

    def _crash(self) -> None:
        self.dead = True
        self.deaths += 1
        self.lists = ActiveInactiveLists()
        self.pages.clear()

    # -- the tick -----------------------------------------------------------

    def run_tick(
        self, tick: int, histogram: List[int],
        events: List[Tuple[int, str, str]],
    ) -> int:
        """One tick of accesses; returns this VM's fault count."""
        if _covers(self.crash_window, tick):
            if not self.dead:
                self._crash()
                events.append((tick, "crash", self.name))
            return 0
        if self.dead:
            self.dead = False
            events.append((tick, "reboot", self.name))
        surging = _covers(self.surge_window, tick)
        if surging and not self.surging:
            events.append((tick, "surge-start", self.name))
        elif self.surging and not surging:
            events.append((tick, "surge-end", self.name))
        self.surging = surging
        if surging:
            self.surge_ticks += 1
        rate = self.spec.accesses_per_tick * self._load_multiplier(tick)
        if surging:
            rate *= 2.0
        accesses = max(1, int(round(rate)))
        if self._sweep_shuffle_due(tick):
            self._sweep_pos = self.rng.randrange(self.spec.footprint_pages)
        lists = self.lists
        pages = self.pages
        capacity = self.spec.capacity_pages
        faults_this_tick = 0
        for _ in range(accesses):
            self.accesses += 1
            vaddr = self._next_page(tick) * PAGE_SIZE
            page = pages.get(vaddr)
            if page is not None and page in lists:
                page.read()
                self.hits += 1
                continue
            self.faults += 1
            queue = 1.0 + min(
                _QUEUE_CAP, _QUEUE_SLOPE * faults_this_tick
            )
            faults_this_tick += 1
            if page is None:
                page = Page(vaddr)
                pages[vaddr] = page
                latency = FIRST_TOUCH_US
                self.first_touches += 1
            else:
                latency = SWAP_FAULT_US * queue
                self.swap_faults += 1
            if len(lists) >= capacity:
                self._evict_to(capacity - 1)
            lists.insert(page)
            page.read()
            histogram[_bucket_index(latency)] += 1
        return faults_this_tick

    def _sweep_shuffle_due(self, tick: int) -> bool:
        pattern = self.spec.pattern
        return (
            pattern.kind == "sweep"
            and pattern.shuffle_every_ticks > 0
            and tick > 0
            and tick % pattern.shuffle_every_ticks == 0
        )

    def _evict_to(self, target: int) -> None:
        while len(self.lists) > target:
            victims = self.lists.select_victims(len(self.lists) - target)
            if not victims:
                victims = self.lists.select_victims(
                    len(self.lists) - target, scan_limit_factor=64
                )
                if not victims:  # pragma: no cover - defensive
                    break

    # -- self-audit ---------------------------------------------------------

    def audit(self) -> int:
        """Check this VM's bookkeeping invariants; returns audit count."""
        if len(self.lists) > self.spec.capacity_pages:
            raise InvariantViolation(
                "fleet-residency",
                f"VM {self.name} holds {len(self.lists)} resident pages "
                f"over capacity {self.spec.capacity_pages}",
                details={"vm": self.name, "resident": len(self.lists)},
            )
        if self.hits + self.faults != self.accesses:
            raise InvariantViolation(
                "fleet-access-accounting",
                f"VM {self.name}: hits ({self.hits}) + faults "
                f"({self.faults}) != accesses ({self.accesses})",
                details={"vm": self.name},
            )
        if self.first_touches + self.swap_faults != self.faults:
            raise InvariantViolation(
                "fleet-fault-accounting",
                f"VM {self.name}: first touches ({self.first_touches}) + "
                f"swap faults ({self.swap_faults}) != faults "
                f"({self.faults})",
                details={"vm": self.name},
            )
        return 3


# ---------------------------------------------------------------------------
# Parallel blocks
# ---------------------------------------------------------------------------

def fleet_vm_names(
    spec: FleetSpec, quick: bool
) -> List[Tuple[FleetTenantSpec, str]]:
    """The full fleet in canonical order: tenant order, then index."""
    out: List[Tuple[FleetTenantSpec, str]] = []
    for tenant in spec.tenants:
        for index in range(tenant.vm_count(quick)):
            out.append((tenant, f"{tenant.name}-{index:03d}"))
    return out


def fleet_payloads(
    spec: FleetSpec, seed: int, quick: bool, invariants: bool
) -> List[Dict[str, object]]:
    """Fixed-size VM blocks for :func:`repro.parallel.run_tasks`.

    Block boundaries depend only on the scenario (``block_vms``), never
    on the worker count, so the same blocks merge in the same order at
    any parallelism.
    """
    vms = fleet_vm_names(spec, quick)
    payloads = []
    for start in range(0, len(vms), spec.block_vms):
        payloads.append({
            "seed": seed,
            "ticks": spec.tick_count(quick),
            "chaos": spec.chaos,
            "invariants": invariants,
            "vms": vms[start:start + spec.block_vms],
        })
    return payloads


def run_fleet_block(payload: Dict[str, object]) -> Dict[str, object]:
    """Simulate one block of VMs for the whole run (worker entry).

    Pure function of the payload: every VM's RNG and chaos windows are
    derived from the scenario seed and the VM's name, so this block
    produces identical results whether it runs in the parent, a worker
    process, or a different partitioning entirely.
    """
    seed = payload["seed"]
    ticks = payload["ticks"]
    chaos = payload["chaos"]
    vms = [
        FleetVM(name, tenant, seed, ticks, chaos)
        for tenant, name in payload["vms"]
    ]
    histogram = [0] * len(LATENCY_BUCKETS_US)
    events: List[Tuple[int, str, str]] = []
    per_tick_faults = [0] * ticks
    for tick in range(ticks):
        for vm in vms:
            per_tick_faults[tick] += vm.run_tick(tick, histogram, events)
    audits = 0
    if payload["invariants"]:
        for vm in vms:
            audits += vm.audit()
    tenants: Dict[str, Dict[str, int]] = {}
    for vm in vms:
        stats = tenants.setdefault(vm.spec.name, {
            "vms": 0, "accesses": 0, "hits": 0, "faults": 0,
            "first_touches": 0, "swap_faults": 0, "deaths": 0,
            "surge_ticks": 0,
        })
        stats["vms"] += 1
        stats["accesses"] += vm.accesses
        stats["hits"] += vm.hits
        stats["faults"] += vm.faults
        stats["first_touches"] += vm.first_touches
        stats["swap_faults"] += vm.swap_faults
        stats["deaths"] += vm.deaths
        stats["surge_ticks"] += vm.surge_ticks
    return {
        "per_tick_faults": per_tick_faults,
        "histogram": histogram,
        "tenants": tenants,
        "events": events,
        "audits": audits,
    }


def merge_block_results(
    results: List[Dict[str, object]], spec: FleetSpec, quick: bool
) -> Dict[str, object]:
    """Fold block results (in task order) into one fleet result.

    Everything merged here is an integer count, and events are sorted
    by (tick, vm, kind), so the merge is independent of both worker
    count and block boundaries.
    """
    ticks = spec.tick_count(quick)
    per_tick_faults = [0] * ticks
    histogram = [0] * len(LATENCY_BUCKETS_US)
    tenants: Dict[str, Dict[str, int]] = {}
    events: List[Tuple[int, str, str]] = []
    audits = 0
    for result in results:
        for tick, count in enumerate(result["per_tick_faults"]):
            per_tick_faults[tick] += count
        for index, count in enumerate(result["histogram"]):
            histogram[index] += count
        for name, stats in result["tenants"].items():
            merged = tenants.setdefault(name, dict.fromkeys(stats, 0))
            for key, value in stats.items():
                merged[key] += value
        events.extend(tuple(event) for event in result["events"])
        audits += result["audits"]
    events.sort(key=lambda event: (event[0], event[2], event[1]))
    # Tenant order from the scenario, not dict insertion across blocks.
    ordered = {
        tenant.name: tenants[tenant.name]
        for tenant in spec.tenants if tenant.name in tenants
    }
    return {
        "per_tick_faults": per_tick_faults,
        "histogram": histogram,
        "tenants": ordered,
        "events": events,
        "audits": audits,
    }
