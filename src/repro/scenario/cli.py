"""The campaign CLI: ``python -m repro.scenario run|validate|list|report``.

``run`` accepts either a path to a scenario file or a bare template
name resolved against the bundled ``scenarios/`` directory (override
with ``REPRO_SCENARIOS_DIR``).  ``--report`` writes the
``repro-scenario-metrics/1`` KPI document; ``--trace`` writes a
``chrome://tracing`` event trace.  Neither the report nor stdout ever
mentions worker or partition counts: the same scenario + seed must
produce byte-identical output at any parallelism, and the CI
``scenario-smoke`` job ``cmp``-pins exactly that.
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import sys
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError, ScenarioError
from ..obs import EventTracer, export_chrome_trace
from .runner import run_scenario
from .schema import load_scenario, validate_report

__all__ = ["main", "scenarios_dir", "template_names", "resolve_scenario"]


def scenarios_dir() -> Optional[str]:
    """The bundled template directory, or ``None`` outside a checkout.

    ``REPRO_SCENARIOS_DIR`` overrides; otherwise walk up from this
    package looking for a ``scenarios/`` directory (the repo keeps it
    at the root, next to ``src/``).
    """
    override = os.environ.get("REPRO_SCENARIOS_DIR")
    if override:
        return override if os.path.isdir(override) else None
    here = os.path.dirname(os.path.abspath(__file__))
    for _ in range(6):
        candidate = os.path.join(here, "scenarios")
        if os.path.isdir(candidate):
            return candidate
        parent = os.path.dirname(here)
        if parent == here:
            break
        here = parent
    return None


def template_names() -> List[str]:
    """Bundled template names (file stems), sorted."""
    directory = scenarios_dir()
    if directory is None:
        return []
    return sorted(
        name[:-len(".json")]
        for name in os.listdir(directory)
        if name.endswith(".json")
    )


def resolve_scenario(target: str) -> str:
    """A path as given, or a template name against ``scenarios/``."""
    if os.path.exists(target):
        return target
    names = template_names()
    directory = scenarios_dir()
    if directory is not None and target in names:
        return os.path.join(directory, f"{target}.json")
    close = difflib.get_close_matches(target, names, n=1, cutoff=0.6)
    hint = f"  Did you mean {close[0]!r}?" if close else ""
    known = ", ".join(names) if names else "none found"
    raise ScenarioError(
        f"no such scenario file or template {target!r}.{hint}\n"
        f"Bundled templates: {known}"
    )


def _write_json(path: str, document: object) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.scenario",
        description="Run declarative FluidMem scenarios "
                    "(repro-scenario/1 documents)",
    )
    commands = parser.add_subparsers(dest="command")

    commands.add_parser(
        "list", help="list the bundled scenario templates"
    )

    validate = commands.add_parser(
        "validate", help="validate scenario files without running them"
    )
    validate.add_argument("paths", nargs="+", metavar="PATH")

    run = commands.add_parser(
        "run", help="run a scenario (template name or file path)"
    )
    run.add_argument("target", metavar="SCENARIO")
    run.add_argument("--quick", action="store_true",
                     help="smoke-test scale (the scenario's quick_* "
                          "knobs)")
    run.add_argument("--seed", type=int, default=None,
                     help="override the scenario's seed")
    run.add_argument("--workers", type=int, default=1, metavar="N",
                     help="fan fleet scenarios over N processes; "
                          "reports are byte-identical at any N")
    run.add_argument("--partitions", type=int, default=1, metavar="N",
                     help="shard market scenarios over N processes; "
                          "reports are byte-identical at any N")
    run.add_argument("--report", metavar="PATH", default=None,
                     help="write the repro-scenario-metrics/1 KPI "
                          "report as JSON")
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="write a chrome://tracing event trace")

    report = commands.add_parser(
        "report", help="summarize a previously written KPI report"
    )
    report.add_argument("path", metavar="PATH")
    return parser


def _cmd_list() -> int:
    names = template_names()
    if not names:
        print("no scenarios/ directory found "
              "(set REPRO_SCENARIOS_DIR)", file=sys.stderr)
        return 1
    directory = scenarios_dir()
    rows = []
    for name in names:
        try:
            scenario = load_scenario(
                os.path.join(directory, f"{name}.json")
            )
            rows.append((name, scenario.kind, scenario.description))
        except ReproError as exc:
            rows.append((name, "INVALID", str(exc).splitlines()[0]))
    width = max(len(row[0]) for row in rows)
    kind_width = max(len(row[1]) for row in rows)
    for name, kind, description in rows:
        print(f"{name:<{width}}  {kind:<{kind_width}}  {description}")
    return 0


def _cmd_validate(paths: Sequence[str]) -> int:
    failures = 0
    for path in paths:
        try:
            scenario = load_scenario(path)
        except ReproError as exc:
            failures += 1
            print(f"FAIL  {path}")
            print(f"      {exc}".replace("\n", "\n      "))
            continue
        print(f"ok    {path}  ({scenario.name}, kind={scenario.kind})")
    if failures:
        noun = "file" if failures == 1 else "files"
        print(f"\n{failures} {noun} failed validation", file=sys.stderr)
        return 1
    return 0


def _print_report(document: Dict[str, object]) -> None:
    print(
        f"scenario {document['scenario']} "
        f"(kind={document['kind']}, seed={document['seed']}, "
        f"quick={document['quick']})"
    )
    if document["description"]:
        print(f"  {document['description']}")
    print("  KPIs:")
    kpis = document["kpis"]
    width = max(len(name) for name in kpis)
    for name in sorted(kpis):
        print(f"    {name:<{width}}  {kpis[name]}")
    for group_name in sorted(document["groups"]):
        group = document["groups"][group_name]
        print(f"  {group_name}:")
        for member in group:
            fields = ", ".join(
                f"{key}={value}"
                for key, value in group[member].items()
            )
            print(f"    {member}: {fields}")


def _cmd_run(args) -> int:
    path = resolve_scenario(args.target)
    scenario = load_scenario(path)
    if args.seed is not None:
        scenario = replace(scenario, seed=args.seed)
    outcome = run_scenario(
        scenario,
        quick=args.quick,
        workers=args.workers,
        partitions=args.partitions,
    )
    _print_report(outcome.report)
    if args.report is not None:
        _write_json(args.report, outcome.report)
        print(f"report written to {args.report}", file=sys.stderr)
    if args.trace is not None:
        tracers: List[Tuple[str, EventTracer]] = []
        if outcome.tracer is not None:
            tracers.append((scenario.name, outcome.tracer))
        _write_json(args.trace, export_chrome_trace(tracers))
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


def _cmd_report(path: str) -> int:
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ScenarioError(f"cannot read report {path!r}: {exc}")
    validate_report(document)
    _print_report(document)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.error("no command given (list, validate, run, report)")
    if args.command == "run":
        if args.workers < 1:
            parser.error("--workers needs a positive process count")
        if args.partitions < 1:
            parser.error("--partitions needs a positive process count")
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "validate":
            return _cmd_validate(args.paths)
        if args.command == "run":
            return _cmd_run(args)
        return _cmd_report(args.path)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
