"""MongoDB with the WiredTiger storage engine (paper §VI-D2).

What matters for Figure 5 is WiredTiger's *application-managed cache*:
a few GB of anonymous memory holding recently read records, sitting on
top of the kernel's page cache and the collection files on disk.  The
paper's point is that this cache "is incompatible with swap": when the
configured cache exceeds DRAM, the guest kernel swaps parts of it out,
so WiredTiger's "cache hits" silently become swap-ins and the engine
never establishes a stable working set — while FluidMem transparently
gives the engine real (remote) memory capacity.

The model:

* records are 1 KB, packed 4 per 4 KB page, stored contiguously in a
  collection file on an SSD;
* a read costs a base operation time (query parsing, BSON handling,
  index descent — the index pages themselves are touched through guest
  memory too);
* a WiredTiger cache hit touches the cache page through the VM's
  memory port — in the swap world that can be a swap-in, in the
  FluidMem world a remote-memory fault;
* a miss reads the file page through the configured
  :class:`~repro.workloads.io.FileReader` and installs the record into
  the cache, evicting LRU cache pages when the configured cache size is
  reached.
"""

from __future__ import annotations

import random
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Generator, List, Optional

from ..errors import WorkloadError
from ..mem import PAGE_SIZE
from ..sim import CounterSet, Environment
from ..vm import MemoryPort
from .driver import AccessDriver
from .io import FileReader

__all__ = ["MongoConfig", "WiredTigerCache", "MongoServer"]

#: The collection's file id within its FileReader.
COLLECTION_FILE_ID = 7


@dataclass(frozen=True)
class MongoConfig:
    """Server and dataset shape."""

    record_count: int = 100_000
    record_bytes: int = 1024
    wt_cache_bytes: int = 64 * 1024 * 1024
    #: Base cost of one read operation: network-less query execution
    #: (parse, plan, BSON encode).  Figure 5's floor sits near 400 µs.
    base_op_mean_us: float = 330.0
    base_op_sigma_us: float = 60.0
    #: B-tree index pages touched per lookup.
    index_touches: int = 2
    #: Pages reserved for the in-memory index region.
    index_pages: int = 64
    #: On-disk extent read per cache miss (WiredTiger leaf + readahead
    #: neighbours): 64 KB.
    disk_extent_pages: int = 16
    #: In-memory pages the engine touches per lookup beyond the record's
    #: own leaf: btree internal nodes, hazard arrays, session state —
    #: all resident in the (swappable!) cache region.  These touches are
    #: *hot-skewed* (upper btree levels are few and popular).  This
    #: traversal is why an engine cache bigger than DRAM turns "cache
    #: hits" into swap-ins (§VI-D2's instability).
    internal_touches: int = 6
    #: Probability per read that the engine's eviction server scans a
    #: uniformly random (possibly long-cold, swapped-out) cache page —
    #: the "poor interaction ... with kswapd".
    cold_scan_probability: float = 0.25

    def __post_init__(self) -> None:
        if self.record_count < 1:
            raise WorkloadError("need at least one record")
        if self.record_bytes < 1 or self.record_bytes > PAGE_SIZE:
            raise WorkloadError(
                f"record_bytes must be in [1, {PAGE_SIZE}]"
            )
        if self.wt_cache_bytes < PAGE_SIZE:
            raise WorkloadError("cache must hold at least one page")

    @property
    def records_per_page(self) -> int:
        return PAGE_SIZE // self.record_bytes

    @property
    def collection_pages(self) -> int:
        return (
            self.record_count + self.records_per_page - 1
        ) // self.records_per_page


class WiredTigerCache:
    """The engine's record cache over a guest memory region."""

    def __init__(self, config: MongoConfig, region_base: int) -> None:
        self.config = config
        self.region_base = region_base
        self.capacity_pages = config.wt_cache_bytes // PAGE_SIZE
        #: slot (page) -> record ids packed in it, in LRU order.
        self._lru: "OrderedDict[int, List[int]]" = OrderedDict()
        self._record_slot: Dict[int, int] = {}
        self._free = list(range(self.capacity_pages - 1, -1, -1))
        self._open_slot: Optional[int] = None
        #: Every slot that has ever held data (stable once warm); the
        #: pool the eviction server's cold scans sample from.
        self._touched_slots: List[int] = []
        #: Recently accessed slots: the hot set btree descents traverse.
        self._recent: Deque[int] = deque(maxlen=256)
        self.counters = CounterSet()

    def slot_addr(self, slot: int) -> int:
        return self.region_base + slot * PAGE_SIZE

    @property
    def resident_records(self) -> int:
        return len(self._record_slot)

    @property
    def used_pages(self) -> int:
        return len(self._lru)

    def lookup(self, record_id: int) -> Optional[int]:
        """Slot holding the record, refreshing its LRU position."""
        slot = self._record_slot.get(record_id)
        if slot is not None:
            self._lru.move_to_end(slot)
            self._recent.append(slot)
            self.counters.incr("hits")
        else:
            self.counters.incr("misses")
        return slot

    def sample_hot_slot(self, rng: random.Random) -> Optional[int]:
        """A slot from the recently-touched (hot) set: what a btree
        descent's internal nodes look like access-wise."""
        if not self._recent:
            return self.random_used_slot(rng)
        return self._recent[rng.randrange(len(self._recent))]

    def insert(self, record_id: int) -> int:
        """Place a record; returns its slot.  May evict an LRU page."""
        if record_id in self._record_slot:
            raise WorkloadError(f"record {record_id} already cached")
        slot = self._open_slot
        if slot is None or len(self._lru[slot]) >= \
                self.config.records_per_page:
            slot = self._allocate_slot()
            self._open_slot = slot
        self._lru[slot].append(record_id)
        self._lru.move_to_end(slot)
        self._recent.append(slot)
        self._record_slot[record_id] = slot
        return slot

    def random_used_slot(self, rng: random.Random) -> Optional[int]:
        """A uniformly random in-use page (an internal-node stand-in)."""
        if not self._touched_slots:
            return None
        return self._touched_slots[rng.randrange(len(self._touched_slots))]

    def _allocate_slot(self) -> int:
        if self._free:
            slot = self._free.pop()
            self._touched_slots.append(slot)
        else:
            slot, evicted_records = self._lru.popitem(last=False)
            for record_id in evicted_records:
                del self._record_slot[record_id]
            self.counters.incr("evictions")
            if slot == self._open_slot:
                self._open_slot = None
        self._lru[slot] = []
        return slot


class MongoServer:
    """A single mongod with WiredTiger, serving point reads."""

    def __init__(
        self,
        env: Environment,
        port: MemoryPort,
        file_reader: FileReader,
        cache_region_base: int,
        index_region_base: int,
        config: Optional[MongoConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.env = env
        self.port = port
        self.file_reader = file_reader
        self.config = config or MongoConfig()
        self.cache = WiredTigerCache(self.config, cache_region_base)
        self.index_region_base = index_region_base
        self._rng = rng or random.Random(7)
        self._driver = AccessDriver(env, port, rng=self._rng)
        self.counters = CounterSet()

    def _check_record(self, record_id: int) -> None:
        if not 0 <= record_id < self.config.record_count:
            raise WorkloadError(
                f"record {record_id} outside collection of "
                f"{self.config.record_count}"
            )

    def read_record(self, record_id: int) -> Generator:
        """Serve one 1 KB read (YCSB workload C's only operation)."""
        self._check_record(record_id)
        self.counters.incr("reads")

        # Query execution basics: parse, plan, descend the index.
        base_op = max(
            20.0,
            self._rng.gauss(
                self.config.base_op_mean_us,
                self.config.base_op_sigma_us,
            ),
        )
        if not self.env.try_advance(base_op):
            yield self.env.timeout(base_op)
        driver = self._driver
        try_hit = driver.try_hit
        for _ in range(self.config.index_touches):
            page = self._rng.randrange(self.config.index_pages)
            vaddr = self.index_region_base + page * PAGE_SIZE
            if not try_hit(vaddr):
                yield from driver.access(vaddr)
        # Btree descent + engine bookkeeping inside the cache region:
        # hot-skewed traversal plus the eviction server's cold scans.
        for _ in range(self.config.internal_touches):
            internal = self.cache.sample_hot_slot(self._rng)
            if internal is None:
                break
            vaddr = self.cache.slot_addr(internal)
            if not try_hit(vaddr):
                yield from driver.access(vaddr)
        if self._rng.random() < self.config.cold_scan_probability:
            cold = self.cache.random_used_slot(self._rng)
            if cold is not None:
                vaddr = self.cache.slot_addr(cold)
                if not try_hit(vaddr):
                    yield from driver.access(vaddr)
                self.counters.incr("eviction_scans")
        yield from driver.flush()

        slot = self.cache.lookup(record_id)
        if slot is not None:
            # WiredTiger cache hit: touch the cache page.  In the swap
            # world this may be a swap-in; under FluidMem a remote read.
            vaddr = self.cache.slot_addr(slot)
            if not try_hit(vaddr):
                yield from driver.access(vaddr)
            yield from driver.flush()
            self.counters.incr("wt_cache_hits")
            return

        # Miss: the record's 32 KB WiredTiger leaf through the (kernel
        # or guest) page cache, then install into the engine cache.
        file_page = record_id // self.config.records_per_page
        extent = self.config.disk_extent_pages
        extent_first = (file_page // extent) * extent
        yield from self.file_reader.read_extent(
            COLLECTION_FILE_ID, extent_first, extent
        )
        slot = self.cache.insert(record_id)
        yield from self._driver.access(
            self.cache.slot_addr(slot), is_write=True
        )
        yield from self._driver.flush()
        self.counters.incr("wt_cache_misses")
