"""YCSB: the Yahoo Cloud Serving Benchmark client (workload C).

The paper drives MongoDB with YCSB's read-only workload C: 1 KB
records, request keys drawn from YCSB's scrambled-Zipfian distribution.
This module implements the generators faithfully (Gray's incremental
Zipfian algorithm, the same scrambling YCSB uses) plus the measured
client loop that produces Figure 5's latency-vs-runtime traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional

from ..errors import WorkloadError
from ..sim import Environment, LatencyRecorder, TimeSeries

__all__ = [
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "YcsbConfig",
    "YcsbResult",
    "YcsbClient",
]

#: YCSB's default Zipfian constant.
ZIPFIAN_CONSTANT = 0.99
#: FNV offset/prime used by YCSB's key scrambling.
FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3


def fnv_hash64(value: int) -> int:
    """YCSB's FNV-1a 64-bit hash for key scrambling."""
    result = FNV_OFFSET
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        result ^= octet
        result = (result * FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return result


class UniformGenerator:
    """Uniform keys in [0, item_count)."""

    def __init__(self, item_count: int, rng: random.Random) -> None:
        if item_count < 1:
            raise WorkloadError("need at least one item")
        self.item_count = item_count
        self._rng = rng

    def next(self) -> int:
        return self._rng.randrange(self.item_count)


class ZipfianGenerator:
    """Gray et al.'s incremental Zipfian generator (as in YCSB)."""

    def __init__(
        self,
        item_count: int,
        rng: random.Random,
        theta: float = ZIPFIAN_CONSTANT,
    ) -> None:
        if item_count < 1:
            raise WorkloadError("need at least one item")
        if not 0.0 < theta < 1.0:
            raise WorkloadError(f"theta must be in (0,1), got {theta}")
        self.item_count = item_count
        self.theta = theta
        self._rng = rng
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._eta = (1 - (2.0 / item_count) ** (1 - theta)) / (
            1 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(
            self.item_count
            * (self._eta * u - self._eta + 1.0) ** self._alpha
        )


class ScrambledZipfianGenerator:
    """Zipfian popularity spread over the keyspace by FNV hashing.

    YCSB uses this so the hot keys are not clustered at low ids — the
    access pattern stays skewed but spatially scattered, which is what
    makes the MongoDB working set page-unfriendly.
    """

    def __init__(self, item_count: int, rng: random.Random) -> None:
        self.item_count = item_count
        self._zipf = ZipfianGenerator(item_count, rng)

    def next(self) -> int:
        return fnv_hash64(self._zipf.next()) % self.item_count


@dataclass(frozen=True)
class YcsbConfig:
    """Workload C parameters."""

    record_count: int = 100_000
    operation_count: int = 10_000
    record_bytes: int = 1024
    #: "zipfian" (YCSB's workload C default) or "uniform".
    request_distribution: str = "zipfian"

    def __post_init__(self) -> None:
        if self.record_count < 1 or self.operation_count < 1:
            raise WorkloadError("record/operation counts must be >= 1")
        if self.request_distribution not in ("zipfian", "uniform"):
            raise WorkloadError(
                f"unknown distribution {self.request_distribution!r}"
            )


class YcsbResult:
    """Latencies plus the Figure 5 time series."""

    def __init__(self) -> None:
        self.read_latency = LatencyRecorder("ycsb.read", max_samples=500_000)
        self.timeline = TimeSeries("ycsb.read-latency")

    @property
    def average_latency_us(self) -> float:
        return self.read_latency.mean

    def __repr__(self) -> str:
        return (
            f"<YcsbResult n={self.read_latency.count} "
            f"avg={self.average_latency_us:.0f}us>"
        )


class YcsbClient:
    """The measured client: workload C against any record server.

    ``server`` must expose ``read_record(record_id)`` as a simulation
    generator (e.g. :class:`repro.workloads.mongo.MongoServer`).
    """

    def __init__(
        self,
        env: Environment,
        server: object,
        config: Optional[YcsbConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.env = env
        self.server = server
        self.config = config or YcsbConfig()
        rng = rng or random.Random(99)
        if self.config.request_distribution == "zipfian":
            self._keys = ScrambledZipfianGenerator(
                self.config.record_count, rng
            )
        else:
            self._keys = UniformGenerator(self.config.record_count, rng)

    def run(self) -> Generator:
        """Run the operations; returns a YcsbResult."""
        result = YcsbResult()
        read_record = getattr(self.server, "read_record")
        started = self.env.now
        for _ in range(self.config.operation_count):
            key = self._keys.next()
            op_started = self.env.now
            yield from read_record(key)
            latency = self.env.now - op_started
            result.read_latency.record(latency)
            result.timeline.record(self.env.now - started, latency)
        return result
