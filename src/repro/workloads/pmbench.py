"""pmbench: the paging micro-benchmark behind Figure 3.

The real pmbench [Yang & Seymour 2018] mmaps a working set, touches
every page once to warm up, then issues uniformly random 4 KB accesses
at a configurable read/write mix, recording per-access latency
histograms.  The paper runs it inside a VM with a 4 GB working set over
1 GB of local DRAM, 50 % reads, for 100 s.

This module reproduces that procedure against any
:class:`~repro.vm.MemoryPort`: warm-up pass, then ``measured_accesses``
uniform accesses with per-access latencies recorded separately for
reads and writes (Figure 3 plots the two CDFs per backend).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional

from ..errors import WorkloadError
from ..mem import PAGE_SIZE
from ..sim import Cdf, Environment, LatencyRecorder
from ..vm import MemoryPort
from .driver import AccessDriver

__all__ = ["PmbenchConfig", "PmbenchResult", "Pmbench"]


@dataclass(frozen=True)
class PmbenchConfig:
    """Shape of one pmbench run."""

    #: Working set size in pages (paper: 4 GiB = 1 Mi pages).
    wss_pages: int = 262144
    #: Fraction of accesses that are reads (paper: 0.5).
    read_ratio: float = 0.5
    #: Number of measured accesses after warm-up.  The paper runs for
    #: 100 s of wall time; we run a fixed access count instead so the
    #: statistics are deterministic.
    measured_accesses: int = 100_000
    #: Touch every page once before measuring (pmbench's cache warm-up).
    warmup: bool = True

    def __post_init__(self) -> None:
        if self.wss_pages < 1:
            raise WorkloadError("working set must be at least one page")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise WorkloadError(
                f"read_ratio must be in [0,1], got {self.read_ratio}"
            )
        if self.measured_accesses < 1:
            raise WorkloadError("need at least one measured access")


class PmbenchResult:
    """Latency distributions of one run."""

    def __init__(
        self,
        read_latency: LatencyRecorder,
        write_latency: LatencyRecorder,
        warmup_time_us: float,
        measured_time_us: float,
        hits: int,
        faults: int,
    ) -> None:
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.warmup_time_us = warmup_time_us
        self.measured_time_us = measured_time_us
        self.hits = hits
        self.faults = faults

    @property
    def all_samples(self):
        return list(self.read_latency.samples) + list(
            self.write_latency.samples
        )

    @property
    def average_latency_us(self) -> float:
        """The number Figure 3 puts in parentheses."""
        total = (
            self.read_latency.mean * self.read_latency.count
            + self.write_latency.mean * self.write_latency.count
        )
        return total / (self.read_latency.count + self.write_latency.count)

    def cdf(self) -> Cdf:
        return Cdf(self.all_samples)

    @property
    def hit_fraction(self) -> float:
        return self.hits / max(1, self.hits + self.faults)

    def __repr__(self) -> str:
        return (
            f"<PmbenchResult avg={self.average_latency_us:.2f}us "
            f"hit%={100 * self.hit_fraction:.1f}>"
        )


class Pmbench:
    """The benchmark process."""

    def __init__(
        self,
        env: Environment,
        port: MemoryPort,
        base_addr: int,
        config: Optional[PmbenchConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.env = env
        self.port = port
        self.base_addr = base_addr
        self.config = config or PmbenchConfig()
        self._rng = rng or random.Random(1234)

    def _addr(self, page_index: int) -> int:
        return self.base_addr + page_index * PAGE_SIZE

    def run(self) -> Generator:
        """Execute warm-up + measurement; returns a PmbenchResult."""
        config = self.config
        read_latency = LatencyRecorder("pmbench.read", max_samples=500_000)
        write_latency = LatencyRecorder("pmbench.write", max_samples=500_000)

        warmup_started = self.env.now
        if config.warmup:
            warm_driver = AccessDriver(self.env, self.port, rng=self._rng)
            addr = self._addr
            try_hit = warm_driver.try_hit
            for page in range(config.wss_pages):
                vaddr = addr(page)
                if not try_hit(vaddr, is_write=True):
                    yield from warm_driver.access(vaddr, is_write=True)
            yield from warm_driver.flush()
        warmup_time = self.env.now - warmup_started

        # The driver records per-access latency: sampled DRAM cost for
        # hits, exact fault time for misses.  Swapping its recorder per
        # access splits the read and write distributions.
        driver = AccessDriver(self.env, self.port, rng=self._rng)
        measured_started = self.env.now
        addr = self._addr
        rng = self._rng
        randrange, rand = rng.randrange, rng.random
        try_hit = driver.try_hit
        wss_pages, read_ratio = config.wss_pages, config.read_ratio
        for _ in range(config.measured_accesses):
            page = randrange(wss_pages)
            is_read = rand() < read_ratio
            driver.latency = read_latency if is_read else write_latency
            vaddr = addr(page)
            if not try_hit(vaddr, is_write=not is_read):
                yield from driver.access(vaddr, is_write=not is_read)
        yield from driver.flush()
        measured_time = self.env.now - measured_started

        return PmbenchResult(
            read_latency=read_latency,
            write_latency=write_latency,
            warmup_time_us=warmup_time,
            measured_time_us=measured_time,
            hits=driver.hits,
            faults=driver.faults,
        )
