"""Graph500: Kronecker graph generation + sequential reference BFS.

The paper uses the *sequential reference implementation* of Graph500
(§VI-D1): build a Kronecker (R-MAT) graph of 2^scale vertices and
edgefactor 16, run 64 BFS traversals from random roots, and report the
harmonic mean of TEPS (traversed edges per second).  BFS over a CSR
graph is memory bound with irregular access — precisely the workload
that stresses a paging system.

This implementation really runs BFS (results are validated against the
generated edges) while *tracing* its memory accesses at page
granularity onto a :class:`~repro.vm.MemoryPort`: the CSR arrays
(xadj, adjacency), the parent array, and the visited bitmap are laid
out in guest memory, and every BFS array access touches the page that
element lives on.  TEPS is computed in simulated time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, List, Optional

import numpy as np

from ..errors import WorkloadError
from ..mem import PAGE_SIZE
from ..sim import Environment, harmonic_mean
from ..vm import MemoryPort
from .driver import AccessDriver

__all__ = [
    "Graph500Config",
    "KroneckerGraph",
    "Graph500Result",
    "Graph500",
    "generate_kronecker_edges",
]

#: R-MAT initiator probabilities from the Graph500 specification.
RMAT_A, RMAT_B, RMAT_C = 0.57, 0.19, 0.19

#: Bytes per element of each traced array.
XADJ_BYTES = 8       # int64 offsets
ADJ_BYTES = 8        # int64 neighbor ids
PARENT_BYTES = 8     # int64 parent ids
VISITED_BYTES = 1    # byte-per-vertex bitmap (simplified)


def generate_kronecker_edges(
    scale: int, edgefactor: int, rng: np.random.Generator
) -> np.ndarray:
    """Edge list (m x 2) per the Graph500 Kronecker generator."""
    if scale < 1:
        raise WorkloadError(f"scale must be >= 1, got {scale}")
    if edgefactor < 1:
        raise WorkloadError(f"edgefactor must be >= 1, got {edgefactor}")
    n_edges = edgefactor << scale
    ab = RMAT_A + RMAT_B
    c_norm = RMAT_C / (1.0 - ab)
    a_norm = RMAT_A / ab

    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    for bit in range(scale):
        heads = rng.random(n_edges) > ab
        tails = rng.random(n_edges) > np.where(heads, c_norm, a_norm)
        src |= heads.astype(np.int64) << bit
        dst |= tails.astype(np.int64) << bit

    # Permute vertex labels and shuffle edges, per the reference code.
    perm = rng.permutation(1 << scale)
    src, dst = perm[src], perm[dst]
    order = rng.permutation(n_edges)
    return np.stack([src[order], dst[order]], axis=1)


class KroneckerGraph:
    """CSR form of an undirected Kronecker graph."""

    def __init__(self, scale: int, edgefactor: int, seed: int) -> None:
        self.scale = scale
        self.edgefactor = edgefactor
        self.num_vertices = 1 << scale
        rng = np.random.default_rng(seed)
        edges = generate_kronecker_edges(scale, edgefactor, rng)
        self.num_input_edges = len(edges)

        # Undirected: both directions; drop self-loops for traversal.
        mask = edges[:, 0] != edges[:, 1]
        fwd = edges[mask]
        both = np.concatenate([fwd, fwd[:, ::-1]])
        order = np.lexsort((both[:, 1], both[:, 0]))
        both = both[order]
        self.adjacency = both[:, 1].copy()
        counts = np.bincount(both[:, 0], minlength=self.num_vertices)
        self.xadj = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=self.xadj[1:])

    def neighbors(self, vertex: int) -> np.ndarray:
        return self.adjacency[self.xadj[vertex]:self.xadj[vertex + 1]]

    def degree(self, vertex: int) -> int:
        return int(self.xadj[vertex + 1] - self.xadj[vertex])

    @property
    def num_directed_edges(self) -> int:
        return len(self.adjacency)

    def memory_bytes(self) -> int:
        """Bytes of the traced arrays (the workload's WSS)."""
        return (
            (self.num_vertices + 1) * XADJ_BYTES
            + self.num_directed_edges * ADJ_BYTES
            + self.num_vertices * (PARENT_BYTES + VISITED_BYTES)
        )


@dataclass(frozen=True)
class Graph500Config:
    """One Graph500 run (§VI-D1 parameters, counts scaled by callers)."""

    scale: int = 14
    edgefactor: int = 16
    num_bfs_roots: int = 64
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_bfs_roots < 1:
            raise WorkloadError("need at least one BFS root")


class Graph500Result:
    """TEPS per root plus the harmonic mean the benchmark reports."""

    def __init__(self, teps: List[float], edges_traversed: List[int],
                 bfs_times_us: List[float]) -> None:
        if not teps:
            raise WorkloadError("no BFS trials completed")
        self.teps = teps
        self.edges_traversed = edges_traversed
        self.bfs_times_us = bfs_times_us

    @property
    def harmonic_mean_teps(self) -> float:
        return harmonic_mean(self.teps)

    @property
    def mean_teps_millions(self) -> float:
        """Millions of TEPS — the y-axis of Figure 4."""
        return self.harmonic_mean_teps / 1e6

    def __repr__(self) -> str:
        return (
            f"<Graph500Result {self.mean_teps_millions:.2f} MTEPS over "
            f"{len(self.teps)} roots>"
        )


class Graph500:
    """The traced sequential BFS benchmark."""

    def __init__(
        self,
        env: Environment,
        port: MemoryPort,
        base_addr: int,
        config: Optional[Graph500Config] = None,
        graph: Optional[KroneckerGraph] = None,
    ) -> None:
        self.env = env
        self.port = port
        self.config = config or Graph500Config()
        self.graph = graph or KroneckerGraph(
            self.config.scale, self.config.edgefactor, self.config.seed
        )
        self._rng = random.Random(self.config.seed)

        # Array layout in guest memory, page aligned.  The per-BFS
        # result arrays (parent, visited) are double-buffered: the
        # reference code allocates fresh arrays per trial, which is
        # where its ~150k minor faults — and FluidMem's 2.6 % overhead
        # at scale 20 — come from; two rotating slots reproduce the
        # fresh-allocation faulting without unbounded address growth.
        graph_size = self.graph
        self.xadj_base = base_addr
        xadj_bytes = (graph_size.num_vertices + 1) * XADJ_BYTES
        self.adj_base = self._align(self.xadj_base + xadj_bytes)
        adj_bytes = graph_size.num_directed_edges * ADJ_BYTES
        parent_bytes = graph_size.num_vertices * PARENT_BYTES
        visited_bytes = graph_size.num_vertices * VISITED_BYTES
        self.parent_bases = []
        self.visited_bases = []
        cursor = self._align(self.adj_base + adj_bytes)
        for _slot in range(2):
            self.parent_bases.append(cursor)
            cursor = self._align(cursor + parent_bytes)
            self.visited_bases.append(cursor)
            cursor = self._align(cursor + visited_bytes)
        self.end_addr = cursor

    @staticmethod
    def _align(addr: int) -> int:
        return (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)

    # -- traced address helpers ------------------------------------------------

    def _xadj_page(self, vertex: int) -> int:
        return (
            self.xadj_base + vertex * XADJ_BYTES
        ) & ~(PAGE_SIZE - 1)

    def _adj_pages(self, start_edge: int, end_edge: int) -> range:
        if start_edge >= end_edge:
            return range(0)
        first = (self.adj_base + start_edge * ADJ_BYTES) & ~(PAGE_SIZE - 1)
        last = (
            self.adj_base + (end_edge - 1) * ADJ_BYTES
        ) & ~(PAGE_SIZE - 1)
        return range(first, last + PAGE_SIZE, PAGE_SIZE)

    def _parent_page(self, vertex: int, slot: int = 0) -> int:
        return (
            self.parent_bases[slot] + vertex * PARENT_BYTES
        ) & ~(PAGE_SIZE - 1)

    def _visited_page(self, vertex: int, slot: int = 0) -> int:
        return (
            self.visited_bases[slot] + vertex * VISITED_BYTES
        ) & ~(PAGE_SIZE - 1)

    # -- the benchmark -------------------------------------------------------------

    def load_graph(self) -> Generator:
        """Populate the CSR arrays in guest memory (the generation phase).

        Sequential writes over the graph structure — like the reference
        code's construction.  The per-BFS result arrays are NOT loaded:
        each trial first-touches its own slot, as the reference's fresh
        allocations do.
        """
        driver = AccessDriver(self.env, self.port, rng=self._rng)
        try_hit = driver.try_hit
        for addr in range(self.xadj_base, self.parent_bases[0], PAGE_SIZE):
            if not try_hit(addr, is_write=True):
                yield from driver.access(addr, is_write=True)
        yield from driver.flush()

    def pick_roots(self) -> List[int]:
        """Sample roots with at least one edge, like the reference code."""
        roots: List[int] = []
        attempts = 0
        while len(roots) < self.config.num_bfs_roots:
            attempts += 1
            if attempts > 100 * self.config.num_bfs_roots:
                raise WorkloadError(
                    "could not find enough connected BFS roots"
                )
            vertex = self._rng.randrange(self.graph.num_vertices)
            if self.graph.degree(vertex) > 0:
                roots.append(vertex)
        return roots

    def bfs(self, root: int, driver: AccessDriver,
            slot: int = 0) -> Generator:
        """One traced BFS; returns (edges_traversed, parent array)."""
        graph = self.graph
        parent = np.full(graph.num_vertices, -1, dtype=np.int64)
        parent[root] = root
        yield from driver.access(self._parent_page(root, slot),
                                 is_write=True)
        yield from driver.access(self._visited_page(root, slot),
                                 is_write=True)

        # Hoisted hot-loop locals: the BFS inner loop touches a page
        # per array element and most of those are DRAM hits.
        try_hit = driver.try_hit
        access = driver.access
        xadj = graph.xadj
        adjacency = graph.adjacency
        xadj_page = self._xadj_page
        adj_pages = self._adj_pages
        visited_page = self._visited_page
        parent_page = self._parent_page

        frontier = [root]
        edges_traversed = 0
        while frontier:
            next_frontier: List[int] = []
            for vertex in frontier:
                start = int(xadj[vertex])
                end = int(xadj[vertex + 1])
                page = xadj_page(vertex)
                if not try_hit(page):
                    yield from access(page)
                for page in adj_pages(start, end):
                    if not try_hit(page):
                        yield from access(page)
                for neighbor in adjacency[start:end]:
                    neighbor = int(neighbor)
                    edges_traversed += 1
                    page = visited_page(neighbor, slot)
                    if not try_hit(page):
                        yield from access(page)
                    if parent[neighbor] == -1:
                        parent[neighbor] = vertex
                        page = parent_page(neighbor, slot)
                        if not try_hit(page, is_write=True):
                            yield from access(page, is_write=True)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return edges_traversed, parent

    def run(self) -> Generator:
        """Load the graph, run the BFS trials, return a Graph500Result."""
        yield from self.load_graph()
        driver = AccessDriver(self.env, self.port, rng=self._rng)
        teps: List[float] = []
        traversed: List[int] = []
        times: List[float] = []
        for index, root in enumerate(self.pick_roots()):
            started = self.env.now
            edges, _parent = yield from self.bfs(root, driver,
                                                 slot=index % 2)
            yield from driver.flush()
            elapsed_us = self.env.now - started
            if elapsed_us <= 0 or edges == 0:
                continue
            times.append(elapsed_us)
            traversed.append(edges)
            # TEPS counts input (undirected) edges per the spec; our
            # traversal count covers both directions, so halve it.
            teps.append((edges / 2) / (elapsed_us / 1e6))
        return Graph500Result(teps, traversed, times)

    def validate_bfs(self, root: int, parent: np.ndarray) -> bool:
        """Graph500-style validation: the parent array is a BFS tree."""
        graph = self.graph
        if parent[root] != root:
            return False
        # Every reached vertex's parent edge must exist, and distances
        # must be consistent (parent depth + 1).
        depth = np.full(graph.num_vertices, -1, dtype=np.int64)
        depth[root] = 0
        frontier = [root]
        while frontier:
            next_frontier = []
            for vertex in frontier:
                for neighbor in graph.neighbors(vertex):
                    neighbor = int(neighbor)
                    if depth[neighbor] == -1:
                        depth[neighbor] = depth[vertex] + 1
                        next_frontier.append(neighbor)
            frontier = next_frontier
        for vertex in range(graph.num_vertices):
            if parent[vertex] == -1:
                if depth[vertex] != -1:
                    return False
                continue
            if vertex == root:
                continue
            par = int(parent[vertex])
            if vertex not in graph.neighbors(par):
                return False
            if depth[vertex] != depth[par] + 1:
                return False
        return True
