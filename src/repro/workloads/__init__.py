"""Workloads: pmbench, Graph500, YCSB, MongoDB — all memory-traced."""

from .driver import HIT_COST_US, AccessDriver
from .graph500 import (
    Graph500,
    Graph500Config,
    Graph500Result,
    KroneckerGraph,
    generate_kronecker_edges,
)
from .io import FileReader, GuestCacheFileReader, KernelFileReader
from .mongo import MongoConfig, MongoServer, WiredTigerCache
from .pmbench import Pmbench, PmbenchConfig, PmbenchResult
from .ycsb import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    YcsbClient,
    YcsbConfig,
    YcsbResult,
    ZipfianGenerator,
)

__all__ = [
    "AccessDriver",
    "HIT_COST_US",
    "Pmbench",
    "PmbenchConfig",
    "PmbenchResult",
    "Graph500",
    "Graph500Config",
    "Graph500Result",
    "KroneckerGraph",
    "generate_kronecker_edges",
    "YcsbClient",
    "YcsbConfig",
    "YcsbResult",
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "MongoServer",
    "MongoConfig",
    "WiredTigerCache",
    "FileReader",
    "KernelFileReader",
    "GuestCacheFileReader",
]
