"""File I/O paths for workloads: the two worlds' page caches.

MongoDB reads its collection files through the kernel page cache.  How
that cache behaves differs fundamentally between the two memory worlds:

* **swap world** — file pages live in the guest's DRAM and compete with
  anonymous memory under kswapd (:class:`KernelFileReader` wraps
  :meth:`repro.kernel.GuestMemoryManager.read_file_page`);
* **FluidMem world** — file pages are just guest memory like everything
  else; the guest kernel sees abundant RAM, so its page cache can grow
  to a configured share of the (hotplugged) capacity, with FluidMem
  deciding which of those pages stay in *local* DRAM
  (:class:`GuestCacheFileReader`).
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Generator, Tuple

from ..blockdev import BlockDevice, SECTOR_BYTES
from ..errors import WorkloadError
from ..kernel import GuestMemoryManager
from ..mem import PAGE_SIZE
from ..sim import CounterSet, Environment
from ..vm import MemoryPort
from .driver import AccessDriver

__all__ = ["FileReader", "KernelFileReader", "GuestCacheFileReader"]


class FileReader(abc.ABC):
    """Read file pages through some cache hierarchy."""

    def __init__(self) -> None:
        self.counters = CounterSet()

    @abc.abstractmethod
    def read_page(self, file_id: int, page_index: int) -> Generator:
        """Read one file page; returns True on a cache hit."""

    def read_extent(
        self, file_id: int, first_page: int, count: int
    ) -> Generator:
        """Read ``count`` contiguous pages (e.g. a WiredTiger 32 KB
        leaf).  Default: page-at-a-time; subclasses amortize."""
        hit = True
        for index in range(count):
            page_hit = yield from self.read_page(file_id,
                                                 first_page + index)
            hit = hit and page_hit
        return hit


class KernelFileReader(FileReader):
    """Swap world: the guest kernel's own page cache."""

    def __init__(self, mm: GuestMemoryManager) -> None:
        super().__init__()
        if mm.data_disk is None:
            raise WorkloadError("guest MM has no data disk configured")
        self.mm = mm

    def read_page(self, file_id: int, page_index: int) -> Generator:
        hit = yield from self.mm.read_file_page(file_id, page_index)
        self.counters.incr("hits" if hit else "misses")
        return hit

    def read_extent(
        self, file_id: int, first_page: int, count: int
    ) -> Generator:
        hit = yield from self.mm.read_file_extent(
            file_id, first_page, count
        )
        self.counters.incr("hits" if hit else "misses")
        return hit


class GuestCacheFileReader(FileReader):
    """FluidMem world: page cache in (FluidMem-managed) guest memory.

    A bounded map of file pages onto a guest memory region.  Hits touch
    the backing guest page through the port — which may itself fault to
    remote memory, exactly the effect the paper highlights: "FluidMem
    allows more unused kernel pages to be removed from DRAM and
    replaced with useful application pages" works both ways — the page
    cache can exceed local DRAM by spilling to the key-value store.
    """

    def __init__(
        self,
        env: Environment,
        port: MemoryPort,
        disk: BlockDevice,
        region_base: int,
        capacity_pages: int,
    ) -> None:
        super().__init__()
        if capacity_pages < 1:
            raise WorkloadError("page cache needs at least one page")
        self.env = env
        self.port = port
        self.disk = disk
        self.region_base = region_base
        self.capacity_pages = capacity_pages
        self._driver = AccessDriver(env, port)
        #: (file_id, page_index) -> slot
        self._slots: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self._free = list(range(capacity_pages - 1, -1, -1))

    def _slot_addr(self, slot: int) -> int:
        return self.region_base + slot * PAGE_SIZE

    def read_page(self, file_id: int, page_index: int) -> Generator:
        key = (file_id, page_index)
        slot = self._slots.get(key)
        if slot is not None:
            self._slots.move_to_end(key)
            yield from self._driver.access(self._slot_addr(slot))
            yield from self._driver.flush()
            self.counters.incr("hits")
            return True

        if self._free:
            slot = self._free.pop()
        else:
            _victim, slot = self._slots.popitem(last=False)
            self.counters.incr("pagecache_evictions")
        yield from self.disk.read(
            page_index % self.disk.num_sectors, SECTOR_BYTES
        )
        yield from self._driver.access(self._slot_addr(slot), is_write=True)
        yield from self._driver.flush()
        self._slots[key] = slot
        self.counters.incr("misses")
        return False

    def read_extent(
        self, file_id: int, first_page: int, count: int
    ) -> Generator:
        """Contiguous extent with one device request."""
        missing = [
            index
            for index in range(first_page, first_page + count)
            if (file_id, index) not in self._slots
        ]
        for index in range(first_page, first_page + count):
            key = (file_id, index)
            slot = self._slots.get(key)
            if slot is not None:
                self._slots.move_to_end(key)
                yield from self._driver.access(self._slot_addr(slot))
        yield from self._driver.flush()
        if not missing:
            self.counters.incr("hits")
            return True
        sector = missing[0] % self.disk.num_sectors
        nbytes = min(
            len(missing) * SECTOR_BYTES,
            (self.disk.num_sectors - sector) * SECTOR_BYTES,
        )
        yield from self.disk.read(sector, nbytes)
        for index in missing:
            if self._free:
                slot = self._free.pop()
            else:
                _victim, slot = self._slots.popitem(last=False)
                self.counters.incr("pagecache_evictions")
            yield from self._driver.access(
                self._slot_addr(slot), is_write=True
            )
            self._slots[(file_id, index)] = slot
        yield from self._driver.flush()
        self.counters.incr("misses")
        return False
