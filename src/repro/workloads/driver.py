"""Access driver: the workload side of a memory port.

Workloads issue millions of page touches; creating one simulation event
per DRAM hit would dominate runtime without adding fidelity.  The
driver therefore accounts hit costs arithmetically and only enters the
event machinery on faults (where all the interesting latency lives),
flushing the accumulated hit time as a single timeout every
``flush_every`` hits so the clock stays honest relative to background
processes (kswapd, the write-back flusher).
"""

from __future__ import annotations

import random
from typing import Generator, Optional

from ..mem import PageKind
from ..sim import Environment, LatencyRecorder
from ..vm import MemoryPort

__all__ = ["AccessDriver", "HIT_COST_US"]

#: Cost of an access that hits DRAM (TLB walk + cache effects), µs.
HIT_COST_US = 0.15


class AccessDriver:
    """Batched-hit, faulting-miss access frontend over a MemoryPort."""

    def __init__(
        self,
        env: Environment,
        port: MemoryPort,
        hit_cost_us: float = HIT_COST_US,
        flush_every: int = 256,
        rng: Optional[random.Random] = None,
        latency: Optional[LatencyRecorder] = None,
    ) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.env = env
        self.port = port
        self.hit_cost_us = hit_cost_us
        self.flush_every = flush_every
        self._rng = rng or random.Random(0)
        #: Optional recorder: gets per-access latency (hits ~hit cost,
        #: misses the full fault time).
        self.latency = latency
        self._pending_us = 0.0
        self._hits_since_flush = 0
        self.hits = 0
        self.faults = 0

    def access(
        self,
        vaddr: int,
        is_write: bool = False,
        kind: PageKind = PageKind.ANONYMOUS,
    ) -> Generator:
        """Touch one page; cheap on a hit, full fault path on a miss."""
        if self.port.is_resident(vaddr):
            self.port.touch(vaddr, is_write)
            self.hits += 1
            self._pending_us += self.hit_cost_us
            self._hits_since_flush += 1
            if self.latency is not None:
                # Sample a plausible in-DRAM access time.
                self.latency.record(
                    max(0.02, self._rng.gauss(self.hit_cost_us * 8, 0.4))
                )
            if self._hits_since_flush >= self.flush_every:
                yield from self.flush()
            return
        # Miss: settle accumulated hit time first so ordering is sane.
        if self._pending_us > 0.0:
            yield from self.flush()
        started = self.env.now
        yield from self.port.access(vaddr, is_write, kind=kind)
        self.faults += 1
        if self.latency is not None:
            self.latency.record(self.env.now - started)

    def flush(self) -> Generator:
        """Charge any accumulated hit time to the clock."""
        if self._pending_us > 0.0:
            pending, self._pending_us = self._pending_us, 0.0
            self._hits_since_flush = 0
            yield self.env.timeout(pending)

    @property
    def total_accesses(self) -> int:
        return self.hits + self.faults

    def __repr__(self) -> str:
        return (
            f"<AccessDriver hits={self.hits} faults={self.faults}>"
        )
