"""Access driver: the workload side of a memory port.

Workloads issue millions of page touches; creating one simulation event
per DRAM hit would dominate runtime without adding fidelity.  The
driver therefore accounts hit costs arithmetically and only enters the
event machinery on faults (where all the interesting latency lives),
flushing the accumulated hit time as a single timeout every
``flush_every`` hits so the clock stays honest relative to background
processes (kswapd, the write-back flusher).

Hot loops should prefer :meth:`AccessDriver.try_hit` — a plain method
(no generator) that handles the DRAM-hit case entirely without the
event machinery, settling due flushes through
:meth:`~repro.sim.Environment.try_advance` when that is provably
equivalent to the timeout it replaces.  When it returns False the
caller falls back to ``yield from driver.access(...)``, which behaves
exactly as before — so workloads written either way produce
byte-identical simulated results (DESIGN.md §12).
"""

from __future__ import annotations

import random
from typing import Generator, Optional

from ..mem import PageKind
from ..sim import Environment, LatencyRecorder
from ..vm import MemoryPort

__all__ = ["AccessDriver", "HIT_COST_US"]

#: Cost of an access that hits DRAM (TLB walk + cache effects), µs.
HIT_COST_US = 0.15


class AccessDriver:
    """Batched-hit, faulting-miss access frontend over a MemoryPort."""

    def __init__(
        self,
        env: Environment,
        port: MemoryPort,
        hit_cost_us: float = HIT_COST_US,
        flush_every: int = 256,
        rng: Optional[random.Random] = None,
        latency: Optional[LatencyRecorder] = None,
    ) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.env = env
        self.port = port
        self.hit_cost_us = hit_cost_us
        self.flush_every = flush_every
        self._rng = rng or random.Random(0)
        #: Optional recorder: gets per-access latency (hits ~hit cost,
        #: misses the full fault time).
        self.latency = latency
        self._pending_us = 0.0
        self._hits_since_flush = 0
        #: Length of the current run of consecutive hits; reported to
        #: the port via ``note_hit_run`` when the run ends (metrics-
        #: silent — purely batching-effectiveness accounting).
        self._run_hits = 0
        self.hits = 0
        self.faults = 0

    def try_hit(self, vaddr: int, is_write: bool = False) -> bool:
        """Fast path: account a DRAM hit without the event machinery.

        Returns True iff the page was resident *and* any flush that came
        due could be settled as a pure clock advance.  On False nothing
        has been mutated; the caller must fall back to
        ``yield from access(...)``, which then performs the access
        (including this hit's accounting) exactly as the slow path
        always did.
        """
        port = self.port
        if not port.is_resident(vaddr):
            return False
        if self._hits_since_flush + 1 >= self.flush_every:
            # Committing this hit makes a flush due; take the fast path
            # only if the whole batch settles as a clock advance.
            if not self.env.try_advance(
                self._pending_us + self.hit_cost_us
            ):
                return False
            self._pending_us = 0.0
            self._hits_since_flush = 0
            port.note_hit_run(self._run_hits + 1)
            self._run_hits = 0
        else:
            self._pending_us += self.hit_cost_us
            self._hits_since_flush += 1
            self._run_hits += 1
        port.touch(vaddr, is_write)
        self.hits += 1
        if self.latency is not None:
            # Sample a plausible in-DRAM access time (same draw, same
            # order as the generator path — the RNG stream is pinned).
            self.latency.record(
                max(0.02, self._rng.gauss(self.hit_cost_us * 8, 0.4))
            )
        return True

    def access(
        self,
        vaddr: int,
        is_write: bool = False,
        kind: PageKind = PageKind.ANONYMOUS,
    ) -> Generator:
        """Touch one page; cheap on a hit, full fault path on a miss."""
        if self.port.is_resident(vaddr):
            self.port.touch(vaddr, is_write)
            self.hits += 1
            self._pending_us += self.hit_cost_us
            self._hits_since_flush += 1
            self._run_hits += 1
            if self.latency is not None:
                # Sample a plausible in-DRAM access time.
                self.latency.record(
                    max(0.02, self._rng.gauss(self.hit_cost_us * 8, 0.4))
                )
            if self._hits_since_flush >= self.flush_every:
                yield from self.flush()
            return
        # Miss: settle accumulated hit time first so ordering is sane.
        if self._pending_us > 0.0:
            yield from self.flush()
        started = self.env.now
        yield from self.port.access(vaddr, is_write, kind=kind)
        self.faults += 1
        if self.latency is not None:
            self.latency.record(self.env.now - started)

    def flush(self) -> Generator:
        """Charge any accumulated hit time to the clock.

        Prefers a direct clock advance when no earlier event exists (and
        no schedule policy is watching); otherwise falls back to the
        timeout this method always issued.
        """
        if self._run_hits:
            self.port.note_hit_run(self._run_hits)
            self._run_hits = 0
        if self._pending_us > 0.0:
            pending, self._pending_us = self._pending_us, 0.0
            self._hits_since_flush = 0
            if not self.env.try_advance(pending):
                yield self.env.timeout(pending)

    @property
    def total_accesses(self) -> int:
        return self.hits + self.faults

    def __repr__(self) -> str:
        return (
            f"<AccessDriver hits={self.hits} faults={self.faults}>"
        )
