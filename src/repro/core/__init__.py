"""FluidMem: the paper's contribution.

Public surface:

* :class:`Monitor` — the user-space page fault handler (§V),
* :class:`FluidMemConfig` / :class:`MonitorLatency` — tunables,
* :class:`FluidMemoryPort` — a VM's view of its FluidMem-backed memory,
* :class:`UserfaultApp` — libuserfault for bare processes (Table II),
* :class:`LruBuffer`, :class:`PageTracker`, :class:`WritebackQueue` —
  the monitor's internal structures, exposed for tests and ablations,
* :class:`Profiler` / :class:`CodePath` — Table I's built-in profiling.
"""

from .autoscale import AutoscaleConfig, Autoscaler
from .config import FluidMemConfig, MonitorLatency
from .lru_buffer import LruBuffer
from .migration import MigrationReport, migrate_vm
from .monitor import Monitor, VmRegistration
from ..policy.share import SharePolicy, ShareSpec
from .page_tracker import PageTracker
from .port import FluidMemoryPort
from .profiling import CodePath, Profiler
from .userfault_lib import UserfaultApp
from .writeback import StealResult, WritebackEntry, WritebackQueue

__all__ = [
    "Monitor",
    "VmRegistration",
    "migrate_vm",
    "MigrationReport",
    "SharePolicy",
    "ShareSpec",
    "Autoscaler",
    "AutoscaleConfig",
    "FluidMemConfig",
    "MonitorLatency",
    "FluidMemoryPort",
    "UserfaultApp",
    "LruBuffer",
    "PageTracker",
    "WritebackQueue",
    "WritebackEntry",
    "StealResult",
    "Profiler",
    "CodePath",
]
