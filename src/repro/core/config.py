"""FluidMem configuration.

Groups the paper's tunables in one frozen dataclass:

* the LRU buffer size — "the size of the list determines the number of
  pages held in DRAM for all VMs" (§V-A); resizable at runtime, which is
  the whole Table III experiment;
* the four §V-B optimizations, each independently switchable because
  Table II ablates them;
* the monitor's internal code-path costs, taken from Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import FluidMemError
from ..faults.retry import RetryPolicy

__all__ = ["FluidMemConfig", "MonitorLatency"]


@dataclass(frozen=True)
class MonitorLatency:
    """Monitor-internal code-path costs (µs), calibrated to Table I."""

    #: UPDATE_PAGE_CACHE: bookkeeping for the page's cache entry.
    update_page_cache_mean: float = 2.56
    update_page_cache_sigma: float = 0.25
    #: INSERT_PAGE_HASH_NODE: the seen-pages hash (pagetracker).
    insert_page_hash_mean: float = 2.58
    insert_page_hash_sigma: float = 1.26
    #: Lookup in the same hash (cheaper than insert).
    lookup_page_hash_mean: float = 0.9
    lookup_page_hash_sigma: float = 0.3
    #: INSERT_LRU_CACHE_NODE: LRU list insertion.
    insert_lru_mean: float = 2.87
    insert_lru_sigma: float = 0.47
    #: Reading + dispatching one event from the uffd fd (epoll wake-up,
    #: read syscall, handler dispatch).
    dispatch_mean: float = 4.0
    dispatch_sigma: float = 0.8
    #: Extra per-fault cost when the faulter is a KVM guest (VM exit,
    #: EPT handling, vCPU re-scheduling, guest-side fault retirement).
    #: Zero for libuserfault apps.
    vm_exit_overhead: float = 12.0


@dataclass(frozen=True)
class FluidMemConfig:
    """Behavioural knobs of the monitor."""

    #: Pages the LRU buffer lets all VMs keep in DRAM.
    lru_capacity_pages: int = 262144  # 1 GiB
    #: §V-B "Asynchronous writeback": evicted pages go on a write list
    #: flushed in batches instead of blocking the critical path.
    async_writeback: bool = True
    #: §V-B "Asynchronous reads": split reads into top/bottom halves and
    #: run UFFD_REMAP eviction while the network read is in flight.
    async_read: bool = True
    #: §V-B page stealing: resolve a fault from the pending write list,
    #: shortcutting two round trips.
    write_list_steal: bool = True
    #: The pagetracker: first-touch faults get the zero page instead of
    #: a remote read (§V-A).
    zero_page_tracker: bool = True
    #: Write-list flush batch size (pages per multi-write).
    writeback_batch_pages: int = 32
    #: Lazily flush pending writes older than this even if the batch is
    #: not full (the "stale file descriptor" check in §V-B).
    writeback_stale_us: float = 2000.0
    #: Extension (the paper's §V-A future work: "A future optimization
    #: would be to trigger faults for pages not yet evicted" /
    #: prefetch): on each remote read, asynchronously pull this many
    #: sequentially following pages from the store before the guest
    #: asks.  0 = off (the paper's shipped design).
    prefetch_pages: int = 0
    #: Which prefetch policy generates candidates when
    #: ``prefetch_pages`` > 0 (:mod:`repro.policy.prefetch`):
    #: ``"sequential"`` (the original next-N scheme), ``"leap"``
    #: (majority-trend window detection), or ``"none"``.
    prefetch_policy: str = "sequential"
    #: Allocation policy for host frames and the monitor's eviction
    #: buffer (:mod:`repro.policy.alloc`): ``"lifo"`` (the shipped
    #: free-stack behaviour), ``"first-fit"``, ``"buddy"``, or
    #: ``"arena"``.  Name validation happens at monitor build time so
    #: this module stays import-light.
    alloc_policy: str = "lifo"
    #: Lightweight fault-handler coroutines (arXiv 2107.13848): 1 is
    #: the paper's single-threaded monitor loop; N > 1 lets faults
    #: from different vCPUs overlap behind a semaphore of N slots.
    fault_handlers: int = 1
    #: Ablation only — NOT in the paper's design: reorder the LRU on
    #: every monitor-visible access.  The paper's list is insertion
    #: ordered ("the internal ordering of the list does not change"),
    #: which is why guest kswapd picks better victims in Fig. 4c/d.
    lru_reorder_on_access: bool = False

    #: Retry policy for remote-store operations: critical-path reads
    #: retry against (replicated) backends with capped exponential
    #: backoff; the write-back flusher re-enqueues batches whose
    #: retries exhaust.  Exhaustion quarantines the VM with a
    #: :class:`~repro.errors.StoreUnavailableError`.
    retry_policy: RetryPolicy = RetryPolicy()

    latency: MonitorLatency = MonitorLatency()

    def __post_init__(self) -> None:
        if self.lru_capacity_pages < 1:
            raise FluidMemError(
                f"LRU capacity must be >= 1 page, got "
                f"{self.lru_capacity_pages}"
            )
        if self.writeback_batch_pages < 1:
            raise FluidMemError(
                f"writeback batch must be >= 1 page, got "
                f"{self.writeback_batch_pages}"
            )
        if self.writeback_stale_us <= 0:
            raise FluidMemError("writeback_stale_us must be positive")
        if self.prefetch_pages < 0:
            raise FluidMemError("prefetch_pages must be >= 0")
        if self.fault_handlers < 1:
            raise FluidMemError(
                f"fault_handlers must be >= 1, got {self.fault_handlers}"
            )

    def with_optimizations(
        self,
        async_read: bool,
        async_writeback: bool,
    ) -> "FluidMemConfig":
        """Table II variant: toggle the two asynchronous optimizations."""
        return replace(
            self, async_read=async_read, async_writeback=async_writeback
        )

    @classmethod
    def default_table2(cls, **kwargs) -> "FluidMemConfig":
        """The paper's 'Default' row: no asynchronous optimizations."""
        return cls(
            async_writeback=False, async_read=False, **kwargs
        )
