"""The pagetracker: FluidMem's seen-pages hash (paper §V-A, Fig. 2).

"The monitor keeps a list of already seen pages to avoid reads from the
remote key-value store for first-time accesses.  Instead, the fault is
resolved by placing the special zero-filled page at the faulting
address."

Keys are the full 64-bit store keys (page number + partition), so one
tracker serves every VM registered with the monitor.
"""

from __future__ import annotations

from typing import Set

from ..errors import FluidMemError

__all__ = ["PageTracker"]


class PageTracker:
    """Set of store keys the monitor has ever resolved."""

    def __init__(self) -> None:
        self._seen: Set[int] = set()

    def is_first_access(self, key: int) -> bool:
        return key not in self._seen

    def mark_seen(self, key: int) -> None:
        if key in self._seen:
            raise FluidMemError(f"key {key:#x} already tracked")
        self._seen.add(key)

    def forget(self, key: int) -> None:
        """Drop a key (VM deregistration / region teardown)."""
        self._seen.discard(key)

    def __contains__(self, key: int) -> bool:
        return key in self._seen

    def __len__(self) -> int:
        return len(self._seen)

    def __repr__(self) -> str:
        return f"<PageTracker seen={len(self._seen)}>"
