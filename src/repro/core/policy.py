"""Deprecated location of :class:`SharePolicy` / :class:`ShareSpec`.

The provider share policy moved to :mod:`repro.policy.share` when the
:mod:`repro.policy` package collected every pluggable policy family
(allocation, prefetch, shares) — ``repro.core.policy`` vs
``repro.policy`` was a confusing near-collision.  This shim keeps old
imports working with a :class:`DeprecationWarning`; new code should
import from :mod:`repro.policy` (or :mod:`repro.core`, which
re-exports the pair).
"""

from __future__ import annotations

import warnings

__all__ = ["SharePolicy", "ShareSpec"]


def __getattr__(name):  # PEP 562: warn only when actually used.
    if name in __all__:
        warnings.warn(
            "repro.core.policy is deprecated; import "
            f"{name} from repro.policy (or repro.core) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..policy import share

        return getattr(share, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
