"""The FluidMem monitor process (paper §V).

The monitor is the user-space page fault handler: it sleeps on the
userfaultfd event queue, resolves each fault, and manages the global
LRU buffer that bounds how many pages all registered VMs keep in local
DRAM.  This module is the heart of the reproduction — every arrow in
the paper's Figure 2 corresponds to a step in :meth:`Monitor._handle_fault`:

1. guest halts on a missing page          (vCPU blocks on the fault event)
2. kernel fault handler                   (:class:`~repro.kernel.Userfaultfd`)
3. event delivered to the monitor         (``uffd.events``)
4. first access -> ``UFFD_ZERO``          (pagetracker + zero page)
5. wake the guest                         (``UFFDIO_WAKE``)
6. asynchronous eviction                  (after the wake, off-path)
7. ``UFFD_REMAP`` out of the VM           (zero-copy PTE move)
8. write to the key-value store           (:class:`WritebackQueue`)

Re-access of an evicted page takes the read path instead, with the
§V-B optimizations: asynchronous reads interleaved with the eviction
REMAP, write-list stealing, and batched asynchronous write-back.
"""

from __future__ import annotations

import random
from typing import Dict, Generator, List, Optional

from ..check.invariants import NULL_CHECKER, CorrectnessChecker
from ..errors import (
    FluidMemError,
    KeyNotFoundError,
    MonitorStateError,
    StoreUnavailableError,
    TransientStoreError,
    UffdError,
)
from ..faults.retry import retry_call
from ..kernel import UffdFault, UffdOps, UffdRegion, Userfaultfd
from ..kv import KeyValueBackend, PartitionedKeyCodec
from ..mem import PAGE_SIZE, MemoryRegion, Page, PageTable
from ..obs import NULL_OBS, Observability
from ..policy.prefetch import resolve_prefetcher
from ..policy.registry import make_alloc_policy, validate_policy_names
from ..sim import Environment, LatencyRecorder, Resource
from ..sim import core as _simcore
from ..vm import QemuProcess
from .config import FluidMemConfig
from .lru_buffer import LruBuffer
from .page_tracker import PageTracker
from .profiling import CodePath, Profiler
from .writeback import StealResult, WritebackEntry, WritebackQueue

__all__ = ["VmRegistration", "Monitor"]

#: Where the monitor's user-space eviction buffer lives (its own vspace).
BUFFER_BASE = 0x6000_0000_0000


class VmRegistration:
    """One VM's registration with the monitor.

    Carries the store backend, the key codec (native table or virtual
    partition), the QEMU process whose address space faults, and the
    uffd handles for its registered regions.
    """

    def __init__(
        self,
        qemu: QemuProcess,
        store: KeyValueBackend,
        codec: PartitionedKeyCodec,
    ) -> None:
        self.qemu = qemu
        self.store = store
        self.codec = codec
        self.handles: List[UffdRegion] = []
        self.active = True
        #: Virtual-partition lease backing ``codec.partition``, if the
        #: index came from a :class:`VirtualPartitionRegistry`.  The
        #: monitor releases it on deregister (true teardown) so
        #: allocate/free cycles never exhaust the 4096-index space; a
        #: detach keeps it — migration moves the partition, and its
        #: keys, to the destination hypervisor.
        self.partition_lease = None
        #: Set when the VM's backend was declared dead (retries
        #: exhausted): the monitor refuses further faults for this VM
        #: with StoreUnavailableError instead of hanging on a store
        #: that will never answer.
        self.quarantined = False

    @property
    def table(self) -> PageTable:
        return self.qemu.page_table

    def key_for(self, host_vaddr: int) -> int:
        return self.codec.key_for(host_vaddr)

    def release_partition(self) -> None:
        """Give the virtual-partition index back (idempotent)."""
        if self.partition_lease is not None:
            self.partition_lease.release()
            self.partition_lease = None

    def __repr__(self) -> str:
        return (
            f"<VmRegistration pid={self.qemu.pid} "
            f"store={self.store.name} regions={len(self.handles)}>"
        )


class Monitor:
    """The user-space page fault handler."""

    def __init__(
        self,
        env: Environment,
        uffd: Userfaultfd,
        ops: UffdOps,
        config: Optional[FluidMemConfig] = None,
        rng: Optional[random.Random] = None,
        name: str = "monitor",
        obs: Optional[Observability] = None,
        check: Optional[CorrectnessChecker] = None,
    ) -> None:
        self.env = env
        self.uffd = uffd
        self.ops = ops
        self.config = config or FluidMemConfig()
        self._rng = rng or random.Random(0)
        self.name = name
        #: Observability sink; the shared disabled instance by default,
        #: so the hot paths pay one ``enabled`` check when unobserved.
        self.obs = obs if obs is not None else NULL_OBS
        #: Invariant monitor (``repro.check``); the shared disabled
        #: instance by default — same cost model as ``obs``.
        self.check = check if check is not None else NULL_CHECKER
        # Both sinks fix ``enabled`` at construction, so the fault hot
        # path pays one cached-bool load per hook site instead of two
        # attribute loads (DESIGN.md §12).
        self._obs_on = self.obs.enabled
        self._check_on = self.check.enabled

        self.lru = LruBuffer(
            self.config.lru_capacity_pages,
            reorder_on_access=self.config.lru_reorder_on_access,
            obs=self.obs,
            name=name,
            check=self.check,
        )
        self.tracker = PageTracker()
        if self._obs_on:
            self.profiler = Profiler(registry=self.obs.registry, vm=name)
        else:
            self.profiler = Profiler()
        self.counters = self.obs.counters_for(vm=name)
        self.fault_latency = LatencyRecorder(
            f"{name}.fault", max_samples=500_000
        )
        #: Which handler resolved each in-flight fault (obs label);
        #: keyed by the fault so concurrent handlers never clobber
        #: each other's classification.  The flat burst path
        #: (:meth:`_service_fault_fast`) classifies with a local
        #: variable instead — no per-fault dict churn.
        self._fault_paths: Dict[UffdFault, str] = {}
        # Lazily cached bound observers + epilogue histograms for the
        # flat burst path.  Each is created at its first actual record,
        # matching the granular path's registry-creation points exactly
        # (eager creation would change the --metrics instrument set and
        # break the batch-equivalence pins, DESIGN.md §17).
        self._ob_dispatch = None
        self._ob_lookup = None
        self._ob_insert_hash = None
        self._ob_insert_lru = None
        self._ob_zeropage = None
        self._ob_copy = None
        self._ob_wake = None
        self._ob_read = None
        self._ob_update = None
        self._ob_remap = None
        self._ob_write = None
        self._h_fault_latency = None
        self._h_evict_latency = None
        self._h_path_latency: Dict[str, object] = {}

        validate_policy_names(
            self.config.alloc_policy, self.config.prefetch_policy
        )
        #: Candidate generator for the async prefetch extension; None
        #: when prefetching is off (the shipped default) so the fault
        #: hot path pays one identity check.
        self.prefetcher = resolve_prefetcher(
            self.config.prefetch_policy, self.config.prefetch_pages
        )
        #: (id(registration), addr) installed by prefetch and not yet
        #: touched — the accuracy ledger (hit vs wasted).
        self._prefetched_addrs = set()
        #: Eviction-buffer slot placement.  None (the "lifo" default)
        #: keeps the historical monotonically growing buffer space;
        #: a policy recycles slots freed by completed write-backs.
        self._buffer_policy = make_alloc_policy(self.config.alloc_policy)
        self._buffer_slot_count = 16384

        self.buffer_table = PageTable(f"{name}-buffer")
        if self._buffer_policy is not None:
            self._buffer_policy.bind(self._buffer_slot_count)
            # Overflow region starts past the policy-managed slots.
            self._buffer_next = (
                BUFFER_BASE + self._buffer_slot_count * PAGE_SIZE
            )
        else:
            self._buffer_next = BUFFER_BASE
        self.writeback = WritebackQueue(
            env,
            self.buffer_table,
            ops.frames,
            batch_pages=self.config.writeback_batch_pages,
            stale_us=self.config.writeback_stale_us,
            retry_policy=self.config.retry_policy,
            rng=self._rng,
            profiler=self.profiler,
            obs=self.obs,
            owner=name,
            check=self.check,
            slot_free=(
                self._release_buffer_slot
                if self._buffer_policy is not None else None
            ),
        )

        self._by_handle: Dict[UffdRegion, VmRegistration] = {}
        self._registrations: List[VmRegistration] = []
        #: (id(registration), addr) of prefetches currently in flight.
        self._prefetch_inflight = set()
        #: Optional provider policy (per-VM shares/caps, §III); when
        #: None, eviction is the paper's plain global FIFO.
        self.victim_policy = None
        #: DRAM pages lent to the memory market (``repro.market``);
        #: :meth:`give_back` can only return what :meth:`harvest` took.
        self.harvested_pages = 0
        self._handler_slots: Optional[Resource] = None
        self._process = None
        self._running = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Begin watching the event queue."""
        if self._running:
            raise MonitorStateError(f"{self.name} is already running")
        self._running = True
        self._process = self.env.process(self._run())

    @property
    def running(self) -> bool:
        return self._running

    def _run(self) -> Generator:
        if self.config.fault_handlers > 1:
            yield from self._run_concurrent()
            return
        # The paper's single-threaded monitor loop: one fault at a
        # time, in event order.  Burst drain (DESIGN.md §17): when a
        # fault burst is already queued (e.g. several vCPUs faulted
        # while a previous fault was being serviced), the guarded
        # ``try_get_batch`` consumes the next event with zero heap
        # traffic; each fault is still serviced one at a time, in the
        # exact order the granular rendezvous would have produced.
        events = self.uffd.events
        env = self.env
        while self._running:
            fault = events.try_get_batch() if events.items else None
            if fault is None:
                fault = yield events.get()
            if (
                _simcore.FASTPATH_ON
                and _simcore.BATCH_ON
                and env.scheduler is None
            ):
                yield from self._service_fault_fast(fault)
            else:
                yield from self._service_fault(fault)

    def _run_concurrent(self) -> Generator:
        """Lightweight-threaded handlers (arXiv 2107.13848): the
        dispatcher claims one of N semaphore slots per fault and hands
        the fault to its own coroutine, so faults from different
        vCPUs overlap instead of convoying behind one handler."""
        slots = self._handler_slots = Resource(
            self.env, capacity=self.config.fault_handlers
        )
        while self._running:
            fault = yield self.uffd.events.get()
            token = slots.try_acquire()
            if token is None:
                request = slots.request()
                yield request
                token = request
            self.env.process(self._handle_concurrent(fault, token))

    def _handle_concurrent(self, fault: UffdFault, token) -> Generator:
        try:
            yield from self._service_fault(fault)
        finally:
            self._handler_slots.release(token)

    def _service_fault(self, fault: UffdFault) -> Generator:
        start = self.env.now
        try:
            yield from self._handle_fault(fault)
        except StoreUnavailableError as exc:
            # Graceful degradation: the faulting vCPU gets the
            # error (fail fast, no hang) while the monitor keeps
            # serving the other VMs' faults.
            self._fault_paths.pop(fault, None)
            self.counters.incr("faults_failed_unavailable")
            if self._obs_on:
                self.obs.tracer.instant(
                    "fault_failed", self.env.now, cat="fault",
                    track=self.name, addr=f"{fault.addr:#x}",
                    error=type(exc).__name__,
                )
            if fault.resolved.callbacks is not None:
                fault.resolved._defused = True  # may have no waiter
                fault.resolved.fail(exc)
            return
        except BaseException:
            # A handler raising mid-flight (KeyNotFound escalation,
            # invariant violation, interrupt) must not leak the
            # fault's path-label entry.
            self._fault_paths.pop(fault, None)
            raise
        latency = self.env.now - start
        self.fault_latency.record(latency)
        path = self._fault_paths.pop(fault, None)
        if self._obs_on:
            path = path or "unclassified"
            registry = self.obs.registry
            registry.histogram(
                "fault_latency_us", vm=self.name
            ).observe(latency)
            registry.histogram(
                "path_latency_us", path=path, vm=self.name
            ).observe(latency)
            self.obs.tracer.complete(
                "fault", start, latency, cat="fault",
                track=self.name, path=path, addr=f"{fault.addr:#x}",
            )
        self.writeback.check_stale()

    def _mk_observer(self, attr: str, path: CodePath):
        """Create + cache the bound observer for one code path."""
        observe = self.profiler.observer(path)
        setattr(self, attr, observe)
        return observe

    def _service_fault_fast(self, fault: UffdFault) -> Generator:
        """Flat burst-resolution fault service (DESIGN.md §17).

        A byte-equivalent inlining of :meth:`_service_fault` →
        :meth:`_handle_fault` → the spurious / zero-fill / async-read
        resolution paths: the same RNG draws in the same order from the
        same streams, the same heap interactions, the same counter,
        check, and metrics effects.  What changes is interpreter
        overhead — no nested generator chain, cached bound observers,
        no per-fault path-label dict churn — and, while the batch
        window is open (empty heap, no run-until cap: nothing can
        interleave), the pre-wake critical path settles as ONE clock
        commit built by in-order accumulation instead of per-charge
        advances.  Rare branches fall back to the granular helpers
        before any divergence has happened.

        Only dispatched with the fast-path and batch switches on and
        no schedule policy installed (:meth:`_run` re-checks per
        fault); with either switch off the granular
        :meth:`_service_fault` runs instead, and the two must produce
        byte-identical seeded results — the batch-equivalence rule the
        determinism pins enforce.
        """
        env = self.env
        ops = self.ops
        start = env._now
        path = None
        try:
            registration = self._by_handle.get(fault.region)
            if registration is None or not registration.active:
                raise FluidMemError(
                    f"fault {fault!r} for an unregistered region"
                )
            if registration.quarantined:
                raise StoreUnavailableError(
                    f"VM pid={registration.qemu.pid} is quarantined: "
                    f"backend {registration.store.name!r} declared dead"
                )
            self.counters.incr("faults")
            lat = self.config.latency
            gauss = self._rng.gauss
            uffd_lat = ops.latency
            addr = fault.addr
            # Cohort window: with an empty heap and no run-until cap,
            # no event can fire between this fault's charges — they
            # accumulate on a local clock (in charge order, preserving
            # the granular float sequence) and commit at wake time.
            window = not env._heap and env._until_cap is None
            clock = start
            sample = gauss(lat.dispatch_mean, lat.dispatch_sigma)
            if sample < 0.05:
                sample = 0.05
            if window:
                clock += sample
            elif not env.try_advance(sample):
                yield env.timeout(sample)
            (self._ob_dispatch or self._mk_observer(
                "_ob_dispatch", CodePath.EVENT_DISPATCH))(sample)
            table = registration.table

            if addr in table._entries:
                # Spurious: a prefetch landed while the event sat in
                # the queue — just wake the vCPU.
                path = "spurious"
                if self._prefetched_addrs:
                    token = (id(registration), addr)
                    if token in self._prefetched_addrs:
                        self._prefetched_addrs.discard(token)
                        self.counters.incr("prefetch_hits")
                wake_us = uffd_lat.wake_us
                if window:
                    clock += wake_us
                    if not env.try_advance_batch(clock):
                        env.sync_to(clock)  # pragma: no cover - defensive
                    if fault.resolved.triggered:
                        raise UffdError(f"{fault!r} already woken")
                    fault.resolved.succeed()
                    ops.counters.incr("wake")
                    (self._ob_wake or self._mk_observer(
                        "_ob_wake", CodePath.WAKE))(wake_us)
                elif env.try_advance(wake_us):
                    if fault.resolved.triggered:
                        raise UffdError(f"{fault!r} already woken")
                    fault.resolved.succeed()
                    ops.counters.incr("wake")
                    (self._ob_wake or self._mk_observer(
                        "_ob_wake", CodePath.WAKE))(wake_us)
                else:
                    yield from self._timed(CodePath.WAKE, ops.wake(fault))
                self.counters.incr("spurious_faults")
            else:
                key = registration.key_for(addr)
                if self.config.zero_page_tracker:
                    first = self.tracker.is_first_access(key)
                else:
                    first = False

                if first:
                    # Figure 2's red path, as one cohort: insert-hash,
                    # UFFD_ZEROPAGE, insert-LRU, wake — five charges,
                    # one commit when the window is open.
                    path = "zero_fill"
                    sample = gauss(
                        lat.insert_page_hash_mean,
                        lat.insert_page_hash_sigma,
                    )
                    if sample < 0.05:
                        sample = 0.05
                    if window:
                        clock += sample
                    elif not env.try_advance(sample):
                        yield env.timeout(sample)
                    (self._ob_insert_hash or self._mk_observer(
                        "_ob_insert_hash", CodePath.INSERT_PAGE_HASH_NODE,
                    ))(sample)
                    self.tracker.mark_seen(key)
                    cost = uffd_lat.sample_zeropage(ops._rng)
                    if window:
                        clock += cost
                        ops.finish_zeropage(table, addr)
                    else:
                        if not env.try_advance(cost):
                            yield env.timeout(cost)
                        ops.finish_zeropage(table, addr)
                    (self._ob_zeropage or self._mk_observer(
                        "_ob_zeropage", CodePath.UFFD_ZEROPAGE))(cost)
                    sample = gauss(
                        lat.insert_lru_mean, lat.insert_lru_sigma
                    )
                    if sample < 0.05:
                        sample = 0.05
                    if window:
                        clock += sample
                    elif not env.try_advance(sample):
                        yield env.timeout(sample)
                    (self._ob_insert_lru or self._mk_observer(
                        "_ob_insert_lru", CodePath.INSERT_LRU_CACHE_NODE,
                    ))(sample)
                    self.lru.insert(addr, registration)
                    if self._check_on:
                        self.check.pages.on_zero_fill(key)
                    wake_us = uffd_lat.wake_us
                    if window:
                        clock += wake_us
                        if not env.try_advance_batch(clock):
                            env.sync_to(clock)  # pragma: no cover
                        if fault.resolved.triggered:
                            raise UffdError(f"{fault!r} already woken")
                        fault.resolved.succeed()
                        ops.counters.incr("wake")
                        (self._ob_wake or self._mk_observer(
                            "_ob_wake", CodePath.WAKE))(wake_us)
                    elif env.try_advance(wake_us):
                        if fault.resolved.triggered:
                            raise UffdError(f"{fault!r} already woken")
                        fault.resolved.succeed()
                        ops.counters.incr("wake")
                        (self._ob_wake or self._mk_observer(
                            "_ob_wake", CodePath.WAKE))(wake_us)
                    else:
                        yield from self._timed(
                            CodePath.WAKE, ops.wake(fault)
                        )
                    self.counters.incr("zero_page_faults")
                    # Post-wake (blue path) eviction interleaves with
                    # the guest — stays event-driven, but flat.
                    yield from self._evict_burst(self.lru.capacity, False)
                    if self.victim_policy is not None:
                        yield from self._enforce_policy_caps(
                            registration, False
                        )
                else:
                    # Read fault: restore the page from remote memory.
                    sample = gauss(
                        lat.lookup_page_hash_mean,
                        lat.lookup_page_hash_sigma,
                    )
                    if sample < 0.05:
                        sample = 0.05
                    if window:
                        clock += sample
                    elif not env.try_advance(sample):
                        yield env.timeout(sample)
                    (self._ob_lookup or self._mk_observer(
                        "_ob_lookup", CodePath.LOOKUP_PAGE_HASH))(sample)
                    config = self.config
                    handled = False
                    if not config.zero_page_tracker and \
                            self.tracker.is_first_access(key):
                        if window:
                            if not env.try_advance_batch(clock):
                                env.sync_to(clock)  # pragma: no cover
                            window = False
                        yield from self._first_touch_via_store(
                            fault, registration, key
                        )
                        handled = True
                    elif config.write_list_steal:
                        steal = self.writeback.steal(key)
                        if steal is not None:
                            if window:
                                if not env.try_advance_batch(clock):
                                    env.sync_to(clock)  # pragma: no cover
                                window = False
                            yield from self._resolve_from_steal(
                                fault, registration, steal
                            )
                            handled = True
                    elif self.writeback.holds(key):
                        if window:
                            if not env.try_advance_batch(clock):
                                env.sync_to(clock)  # pragma: no cover
                            window = False
                        yield from self.writeback.wait_durable(key)
                        self.counters.incr("waits_for_writeback")

                    if handled:
                        pass
                    elif not config.async_read:
                        if window:
                            if not env.try_advance_batch(clock):
                                env.sync_to(clock)  # pragma: no cover
                            window = False
                        yield from self._read_sync_path(
                            fault, registration, key
                        )
                    else:
                        # §V-B async read, inlined: issue the read,
                        # evict under it, copy + wake.
                        path = "async_fetch"
                        if window:
                            if not env.try_advance_batch(clock):
                                env.sync_to(clock)  # pragma: no cover
                            window = False
                        issued_at = env._now
                        if self._check_on:
                            self.check.pages.on_read_issued(key)
                        handle = registration.store.read_async(key)
                        lru = self.lru
                        yield from self._evict_burst(
                            lru.capacity - 1, True
                        )
                        sample = gauss(
                            lat.update_page_cache_mean,
                            lat.update_page_cache_sigma,
                        )
                        if sample < 0.05:
                            sample = 0.05
                        if not env.try_advance(sample):
                            yield env.timeout(sample)
                        (self._ob_update or self._mk_observer(
                            "_ob_update", CodePath.UPDATE_PAGE_CACHE,
                        ))(sample)
                        sample = gauss(
                            lat.insert_lru_mean, lat.insert_lru_sigma
                        )
                        if sample < 0.05:
                            sample = 0.05
                        if not env.try_advance(sample):
                            yield env.timeout(sample)
                        (self._ob_insert_lru or self._mk_observer(
                            "_ob_insert_lru",
                            CodePath.INSERT_LRU_CACHE_NODE,
                        ))(sample)
                        try:
                            page = yield handle.event
                        except KeyNotFoundError as exc:
                            if self._check_on:
                                self.check.pages.on_read_failed(key)
                            raise FluidMemError(
                                f"remote memory lost page {addr:#x} "
                                f"(key {key:#x}) on backend "
                                f"{registration.store.name!r} — an "
                                "evicting store (e.g. undersized "
                                "Memcached) cannot back FluidMem"
                            ) from exc
                        except TransientStoreError as exc:
                            self.counters.incr("async_read_failures")
                            try:
                                page = yield from self._fetch_with_retry(
                                    registration, key, prior_attempts=1,
                                    initial_error=exc,
                                )
                            except Exception:
                                if self._check_on:
                                    self.check.pages.on_read_failed(key)
                                raise
                        (self._ob_read or self._mk_observer(
                            "_ob_read", CodePath.READ_PAGE,
                        ))(env._now - issued_at)
                        page = self._as_page(page, addr)
                        # _install_unless_present, inlined.
                        if addr in table._entries:
                            self.counters.incr("duplicate_reads_dropped")
                            installed = False
                        else:
                            cost = uffd_lat.sample_copy(ops._rng)
                            if not env.try_advance(cost):
                                yield env.timeout(cost)
                            mapped = ops.finish_copy(
                                table, addr, page, skip_if_present=True
                            )
                            (self._ob_copy or self._mk_observer(
                                "_ob_copy", CodePath.UFFD_COPY))(cost)
                            if addr not in lru._entries:
                                lru.insert(addr, registration)
                            installed = mapped is page
                        if self._check_on:
                            if installed:
                                self.check.pages.on_read_installed(key)
                            else:
                                self.check.pages.on_read_dropped(key)
                        wake_us = uffd_lat.wake_us
                        if env.try_advance(wake_us):
                            if fault.resolved.triggered:
                                raise UffdError(f"{fault!r} already woken")
                            fault.resolved.succeed()
                            ops.counters.incr("wake")
                            (self._ob_wake or self._mk_observer(
                                "_ob_wake", CodePath.WAKE))(wake_us)
                        else:
                            yield from self._timed(
                                CodePath.WAKE, ops.wake(fault)
                            )
                        self.counters.incr("remote_reads")
                        if self.victim_policy is not None:
                            yield from self._enforce_policy_caps(
                                registration, True
                            )
                        if self.prefetcher is not None:
                            self._maybe_prefetch(fault, registration)
        except StoreUnavailableError as exc:
            # Graceful degradation, mirroring _service_fault.
            self._fault_paths.pop(fault, None)
            self.counters.incr("faults_failed_unavailable")
            if self._obs_on:
                self.obs.tracer.instant(
                    "fault_failed", self.env.now, cat="fault",
                    track=self.name, addr=f"{fault.addr:#x}",
                    error=type(exc).__name__,
                )
            if fault.resolved.callbacks is not None:
                fault.resolved._defused = True  # may have no waiter
                fault.resolved.fail(exc)
            return
        except BaseException:
            self._fault_paths.pop(fault, None)
            raise
        latency = env._now - start
        self.fault_latency.record(latency)
        if self._fault_paths:
            # A granular fallback helper classified this fault.
            path = self._fault_paths.pop(fault, path)
        if self._obs_on:
            path = path or "unclassified"
            hist = self._h_fault_latency
            if hist is None:
                hist = self._h_fault_latency = self.obs.registry.histogram(
                    "fault_latency_us", vm=self.name
                )
            hist.observe(latency)
            phist = self._h_path_latency.get(path)
            if phist is None:
                phist = self._h_path_latency[path] = (
                    self.obs.registry.histogram(
                        "path_latency_us", path=path, vm=self.name
                    )
                )
            phist.observe(latency)
            self.obs.tracer.complete(
                "fault", start, latency, cat="fault",
                track=self.name, path=path, addr=f"{fault.addr:#x}",
            )
        self.writeback.check_stale()

    # -- registration (the QEMU wrapper library's entry points, §IV) -------------

    def register_vm(
        self,
        qemu: QemuProcess,
        store: KeyValueBackend,
        partition: int = 0,
        partition_lease=None,
    ) -> VmRegistration:
        """Register every guest-RAM region of ``qemu`` with FluidMem.

        This is the "VM started with all its memory registered" mode
        (right-hand VM in Figure 1).  Pass ``partition_lease`` (a
        :class:`~repro.kv.PartitionLease`) instead of a raw
        ``partition`` index to have the monitor free the index when the
        VM deregisters.
        """
        if partition_lease is not None:
            partition = partition_lease.index
        codec = PartitionedKeyCodec(
            partition=0 if store.supports_partitions else partition
        )
        registration = VmRegistration(qemu, store, codec)
        registration.partition_lease = partition_lease
        for region in qemu.ram_regions:
            handle = self.uffd.register(region, qemu.pid, qemu.page_table)
            registration.handles.append(handle)
            self._by_handle[handle] = registration
        self._registrations.append(registration)
        self.counters.incr("vms_registered")
        return registration

    def register_process(
        self,
        owner: object,
        store: KeyValueBackend,
        codec: PartitionedKeyCodec,
        region: MemoryRegion,
    ) -> VmRegistration:
        """Register a single region of a bare process (libuserfault).

        ``owner`` needs only ``.pid`` and ``.page_table`` — this is the
        path Table II's test program uses, with no VM involved.
        """
        registration = VmRegistration(owner, store, codec)  # type: ignore[arg-type]
        handle = self.uffd.register(region, owner.pid, owner.page_table)
        registration.handles.append(handle)
        self._by_handle[handle] = registration
        self._registrations.append(registration)
        self.counters.incr("apps_registered")
        return registration

    def register_region(
        self, registration: VmRegistration, region: MemoryRegion
    ) -> None:
        """Register an additional (hotplugged) region for a VM."""
        if not registration.active:
            raise MonitorStateError("registration is no longer active")
        handle = self.uffd.register(
            region, registration.qemu.pid, registration.qemu.page_table
        )
        registration.handles.append(handle)
        self._by_handle[handle] = registration

    def deregister_vm(self, registration: VmRegistration) -> Generator:
        """Tear a VM down: drop its pages everywhere.

        Releases local frames, forgets every tracker key the VM ever
        created, and deletes its pages from the remote store — a dead
        VM must not leak remote memory.
        """
        if not registration.active:
            raise MonitorStateError("registration already deregistered")
        registration.active = False
        for handle in registration.handles:
            self.uffd.unregister(handle)
            del self._by_handle[handle]
        # Flush its pending writes, then drop resident pages.
        yield from self.writeback.drain()
        for vaddr in self.lru.discard_registration(registration):
            pte = registration.table.unmap(vaddr)
            self.ops.frames.free(pte.frame)
        # Release every key: tracker entries and remote store contents.
        doomed_keys = []
        for handle in registration.handles:
            for vaddr in handle.region.pages():
                key = registration.key_for(vaddr)
                if key in self.tracker:
                    self.tracker.forget(key)
                    if self._check_on:
                        self.check.pages.on_forget(key)
                        self.check.writeback.on_forget(key)
                    if registration.store.contains(key):
                        doomed_keys.append(key)
        for key in doomed_keys:
            yield from registration.store.remove(key)
        self.counters.incr("remote_pages_released", by=len(doomed_keys))
        registration.release_partition()
        self._forget_prefetch_state(registration)
        self._registrations.remove(registration)
        self.counters.incr("vms_deregistered")

    def detach_vm(self, registration: VmRegistration) -> Generator:
        """Migration source side: push everything out, release the VM.

        Drains the write list, evicts every resident page of this VM to
        its store, unregisters its regions, and returns the set of page
        keys the tracker had seen — the destination needs them so
        re-accesses read from the store instead of being mistaken for
        first touches.  Returns ``(seen_keys, pages_pushed)``.
        """
        if not registration.active:
            raise MonitorStateError("registration is not active")
        yield from self.writeback.drain()
        resident = [
            vaddr for vaddr, reg in self.lru if reg is registration
        ]
        pushed = 0
        for vaddr in resident:
            self.lru.remove(vaddr)
            buffer_vaddr = self._take_buffer_slot()
            page = yield from self.ops.remap_out(
                registration.table, vaddr, self.buffer_table,
                buffer_vaddr, interleaved=False,
            )
            key = registration.key_for(vaddr)
            yield from registration.store.put(key, page, PAGE_SIZE)
            if self._check_on:
                self.check.pages.on_evicted(key, durable=True)
            pte = self.buffer_table.unmap(buffer_vaddr)
            self.ops.frames.free(pte.frame)
            self._release_buffer_slot(buffer_vaddr)
            pushed += 1
        registration.active = False
        for handle in registration.handles:
            self.uffd.unregister(handle)
            del self._by_handle[handle]
        seen_keys = set()
        for region_handle in registration.handles:
            for vaddr in region_handle.region.pages():
                key = registration.key_for(vaddr)
                if key in self.tracker:
                    seen_keys.add(key)
                    self.tracker.forget(key)
                    if self._check_on:
                        self.check.pages.on_forget(key)
                        self.check.writeback.on_forget(key)
        self._forget_prefetch_state(registration)
        self._registrations.remove(registration)
        self.counters.incr("vms_detached")
        return seen_keys, pushed

    def _forget_prefetch_state(self, registration: VmRegistration) -> None:
        """Drop per-VM prefetcher history and accuracy-ledger entries
        when a VM leaves (their id() may be recycled by a later VM)."""
        vm_token = id(registration)
        if self.prefetcher is not None:
            self.prefetcher.forget(vm_token)
        if self._prefetched_addrs:
            self._prefetched_addrs = {
                token for token in self._prefetched_addrs
                if token[0] != vm_token
            }

    def attach_vm(
        self,
        qemu: QemuProcess,
        store: KeyValueBackend,
        seen_keys,
        partition: int = 0,
    ) -> VmRegistration:
        """Migration destination side: adopt a VM whose pages live in
        the (shared) store.  ``seen_keys`` primes the pagetracker so
        the guest's faults are resolved by store reads, not zero pages.
        """
        registration = self.register_vm(qemu, store, partition=partition)
        for key in seen_keys:
            if self.tracker.is_first_access(key):
                self.tracker.mark_seen(key)
        self.counters.incr("vms_attached")
        return registration

    # -- capacity management (the provider's lever, §III / Table III) -----------

    def set_lru_capacity(self, pages: int) -> None:
        """Change the DRAM budget.  Shrinks take effect via
        :meth:`shrink_to_capacity` or lazily on the next faults."""
        old = self.lru.capacity
        self.lru.resize(pages)
        self.counters.incr("resizes")
        if self._obs_on:
            self.obs.tracer.instant(
                "buffer_resize", self.env.now, cat="capacity",
                track=self.name, old_pages=old, new_pages=pages,
            )

    def shrink_to_capacity(self) -> Generator:
        """Actively evict until the buffer fits its capacity."""
        yield from self._evict_until(self.lru.capacity, interleaved=False)
        yield from self.writeback.drain()

    # -- memory market hooks (repro.market harvester) -----------------------------

    def harvest(self, pages: int) -> Generator:
        """Lend up to ``pages`` of DRAM budget to the memory market.

        Shrinks the LRU capacity (never below one page — a zero-page
        buffer deadlocks the fault path) and actively evicts down to
        the new budget, so the frames are genuinely free when the
        broker sells them.  Returns the pages actually harvested.
        """
        if pages <= 0:
            raise FluidMemError(
                f"harvest must be positive, got {pages}"
            )
        target = max(1, self.lru.capacity - pages)
        taken = self.lru.capacity - target
        if taken > 0:
            self.set_lru_capacity(target)
            yield from self.shrink_to_capacity()
            self.harvested_pages += taken
            self.counters.incr("pages_harvested", by=taken)
        return taken

    def give_back(self, pages: int) -> int:
        """Return harvested DRAM budget to this VM (fast path — a
        capacity grow takes effect immediately, no eviction needed).
        Returns the pages actually restored, capped at what
        :meth:`harvest` took."""
        if pages <= 0:
            raise FluidMemError(
                f"give_back must be positive, got {pages}"
            )
        returned = min(pages, self.harvested_pages)
        if returned > 0:
            self.set_lru_capacity(self.lru.capacity + returned)
            self.harvested_pages -= returned
            self.counters.incr("pages_given_back", by=returned)
        return returned

    # -- eviction-buffer slot placement -----------------------------------------

    def _take_buffer_slot(self) -> int:
        """Pick the buffer vaddr for the next evicted page.

        With a policy, slots freed by completed write-backs are
        recycled; exhaustion falls through to the historical
        monotonic overflow region (and is counted).
        """
        if self._buffer_policy is not None:
            slot = self._buffer_policy.take()
            if slot is not None:
                return BUFFER_BASE + slot * PAGE_SIZE
            self.counters.incr("buffer_slot_overflows")
        vaddr = self._buffer_next
        self._buffer_next += PAGE_SIZE
        return vaddr

    def _release_buffer_slot(self, buffer_vaddr: int) -> None:
        """Recycle a policy-managed slot (overflow vaddrs are not)."""
        if self._buffer_policy is None:
            return
        slot = (buffer_vaddr - BUFFER_BASE) // PAGE_SIZE
        if 0 <= slot < self._buffer_slot_count:
            self._buffer_policy.give(slot)

    # -- fault handling -------------------------------------------------------------

    def _handle_fault(self, fault: UffdFault) -> Generator:
        registration = self._by_handle.get(fault.region)
        if registration is None or not registration.active:
            raise FluidMemError(
                f"fault {fault!r} for an unregistered region"
            )
        if registration.quarantined:
            # Fail fast: the backend was declared dead; do not hang the
            # vCPU on a store that will never answer.
            raise StoreUnavailableError(
                f"VM pid={registration.qemu.pid} is quarantined: "
                f"backend {registration.store.name!r} declared dead"
            )
        self.counters.incr("faults")
        latency = self.config.latency
        pending = self._charge_fast(
            CodePath.EVENT_DISPATCH,
            latency.dispatch_mean,
            latency.dispatch_sigma,
        )
        if pending is not None:
            yield from self._charge_slow(CodePath.EVENT_DISPATCH, pending)
        if fault.addr in registration.table:
            # A prefetch landed between the fault being raised and us
            # reading the event: spurious — just wake the vCPU.
            self._fault_paths[fault] = "spurious"
            if self._prefetched_addrs:
                token = (id(registration), fault.addr)
                if token in self._prefetched_addrs:
                    self._prefetched_addrs.discard(token)
                    self.counters.incr("prefetch_hits")
            if self.ops.try_wake(fault):
                self.profiler.record(CodePath.WAKE, self.ops.latency.wake_us)
            else:
                yield from self._timed(CodePath.WAKE, self.ops.wake(fault))
            self.counters.incr("spurious_faults")
            return
        key = registration.key_for(fault.addr)

        if self.config.zero_page_tracker:
            first = self.tracker.is_first_access(key)
        else:
            # Ablation: no tracker — every fault goes to the store and
            # first touches pay a wasted round trip (KeyNotFound).
            first = False

        if first:
            yield from self._handle_first_touch(fault, registration, key)
        else:
            yield from self._handle_read_fault(fault, registration, key)

    def _handle_first_touch(
        self, fault: UffdFault, registration: VmRegistration, key: int
    ) -> Generator:
        """Figure 2's red path: zero page, wake, evict asynchronously."""
        self._fault_paths[fault] = "zero_fill"
        latency = self.config.latency
        pending = self._charge_fast(
            CodePath.INSERT_PAGE_HASH_NODE,
            latency.insert_page_hash_mean,
            latency.insert_page_hash_sigma,
        )
        if pending is not None:
            yield from self._charge_slow(
                CodePath.INSERT_PAGE_HASH_NODE, pending
            )
        self.tracker.mark_seen(key)
        done, _page, cost = self.ops.try_zeropage(
            registration.table, fault.addr
        )
        if not done:
            yield self.env.timeout(cost)
            self.ops.finish_zeropage(registration.table, fault.addr)
        self.profiler.record(CodePath.UFFD_ZEROPAGE, cost)
        pending = self._charge_fast(
            CodePath.INSERT_LRU_CACHE_NODE,
            latency.insert_lru_mean,
            latency.insert_lru_sigma,
        )
        if pending is not None:
            yield from self._charge_slow(
                CodePath.INSERT_LRU_CACHE_NODE, pending
            )
        self.lru.insert(fault.addr, registration)
        if self._check_on:
            self.check.pages.on_zero_fill(key)
        if self.ops.try_wake(fault):
            self.profiler.record(CodePath.WAKE, self.ops.latency.wake_us)
        else:
            yield from self._timed(CodePath.WAKE, self.ops.wake(fault))
        self.counters.incr("zero_page_faults")
        # Asynchronous (blue path): bring residency back under budget
        # only after the guest is running again.
        yield from self._evict_until(self.lru.capacity, interleaved=False)
        yield from self._enforce_policy_caps(registration, False)

    def _handle_read_fault(
        self, fault: UffdFault, registration: VmRegistration, key: int
    ) -> Generator:
        """Re-access of an evicted page: restore it from remote memory."""
        latency = self.config.latency
        pending = self._charge_fast(
            CodePath.LOOKUP_PAGE_HASH,
            latency.lookup_page_hash_mean,
            latency.lookup_page_hash_sigma,
        )
        if pending is not None:
            yield from self._charge_slow(CodePath.LOOKUP_PAGE_HASH, pending)
        if not self.config.zero_page_tracker and \
                self.tracker.is_first_access(key):
            # Tracker disabled: discover first touches the slow way.
            yield from self._first_touch_via_store(fault, registration, key)
            return

        if self.config.write_list_steal:
            steal = self.writeback.steal(key)
            if steal is not None:
                yield from self._resolve_from_steal(
                    fault, registration, steal
                )
                return
        elif self.writeback.holds(key):
            # No stealing: wait until the pending write is durable,
            # then take the normal read path (two full round trips).
            yield from self.writeback.wait_durable(key)
            self.counters.incr("waits_for_writeback")

        if self.config.async_read:
            yield from self._read_async_path(fault, registration, key)
        else:
            yield from self._read_sync_path(fault, registration, key)

    # -- resilience (retry / quarantine) ------------------------------------

    def _quarantine(self, registration: VmRegistration) -> None:
        """Declare a VM's backend dead after retries exhausted."""
        if not registration.quarantined:
            registration.quarantined = True
            self.counters.incr("vms_quarantined")
            if self._obs_on:
                self.obs.tracer.instant(
                    "quarantine", self.env.now, cat="resilience",
                    track=self.name, pid=registration.qemu.pid,
                    store=registration.store.name,
                )

    def _retry_counters(self, counter: str, path: CodePath):
        def on_retry(attempt: int, delay_us: float, exc: Exception) -> None:
            self.counters.incr(counter)
            self.profiler.record(path, delay_us)
            if self._obs_on:
                self.obs.registry.histogram(
                    "path_latency_us", path="retry_backoff", vm=self.name
                ).observe(delay_us)
                self.obs.tracer.instant(
                    "retry", self.env.now, cat="resilience",
                    track=self.name, op=path.value, attempt=attempt,
                    error=type(exc).__name__,
                )
        return on_retry

    def _fetch_with_retry(
        self,
        registration: VmRegistration,
        key: int,
        prior_attempts: int = 0,
        initial_error: Optional[Exception] = None,
    ) -> Generator:
        """Critical-path read with backoff; quarantines on exhaustion.

        Retries ride out transient store failures (crashed replica,
        dropped fabric message, detected corruption) — a replicated
        backend usually answers from a survivor on the next attempt.
        KeyNotFoundError is *not* retried: it means the store durably
        lost the page, which the callers escalate.
        """
        try:
            page = yield from retry_call(
                self.env,
                lambda: registration.store.get(key),
                self.config.retry_policy,
                rng=self._rng,
                on_retry=self._retry_counters(
                    "read_retries", CodePath.READ_RETRY
                ),
                prior_attempts=prior_attempts,
                initial_error=initial_error,
                what=f"read of key {key:#x} from "
                     f"{registration.store.name!r}",
                obs=self.obs,
                op=CodePath.READ_RETRY.value,
            )
        except StoreUnavailableError:
            self._quarantine(registration)
            raise
        return page

    def _put_with_retry(
        self, registration: VmRegistration, key: int, page: Page
    ) -> Generator:
        """Synchronous eviction write with backoff (same policy)."""
        try:
            yield from retry_call(
                self.env,
                lambda: registration.store.put(key, page, PAGE_SIZE),
                self.config.retry_policy,
                rng=self._rng,
                on_retry=self._retry_counters(
                    "write_retries", CodePath.WRITE_RETRY
                ),
                what=f"write of key {key:#x} to "
                     f"{registration.store.name!r}",
                obs=self.obs,
                op=CodePath.WRITE_RETRY.value,
            )
        except StoreUnavailableError:
            self._quarantine(registration)
            raise

    def _read_async_path(
        self, fault: UffdFault, registration: VmRegistration, key: int
    ) -> Generator:
        """§V-B: issue the read, evict under it, then copy + wake."""
        self._fault_paths[fault] = "async_fetch"
        latency = self.config.latency
        issued_at = self.env.now
        if self._check_on:
            self.check.pages.on_read_issued(key)
        handle = registration.store.read_async(key)
        # Interleave the eviction and cache bookkeeping with the
        # in-flight network read; REMAP runs while the vCPU is already
        # suspended so its IPI is cheap (§V-B).
        yield from self._evict_until(
            self.lru.capacity - 1, interleaved=True
        )
        pending = self._charge_fast(
            CodePath.UPDATE_PAGE_CACHE,
            latency.update_page_cache_mean,
            latency.update_page_cache_sigma,
        )
        if pending is not None:
            yield from self._charge_slow(CodePath.UPDATE_PAGE_CACHE, pending)
        pending = self._charge_fast(
            CodePath.INSERT_LRU_CACHE_NODE,
            latency.insert_lru_mean,
            latency.insert_lru_sigma,
        )
        if pending is not None:
            yield from self._charge_slow(
                CodePath.INSERT_LRU_CACHE_NODE, pending
            )
        try:
            page = yield handle.event
        except KeyNotFoundError as exc:
            if self._check_on:
                self.check.pages.on_read_failed(key)
            raise FluidMemError(
                f"remote memory lost page {fault.addr:#x} "
                f"(key {key:#x}) on backend "
                f"{registration.store.name!r} — an evicting store "
                "(e.g. undersized Memcached) cannot back FluidMem"
            ) from exc
        except TransientStoreError as exc:
            # The asynchronous top half failed; fall back to retried
            # synchronous reads (that first attempt counts against the
            # policy's budget).
            self.counters.incr("async_read_failures")
            try:
                page = yield from self._fetch_with_retry(
                    registration, key, prior_attempts=1,
                    initial_error=exc,
                )
            except Exception:
                if self._check_on:
                    self.check.pages.on_read_failed(key)
                raise
        self.profiler.record(CodePath.READ_PAGE, self.env.now - issued_at)
        page = self._as_page(page, fault.addr)
        installed = yield from self._install_unless_present(
            registration, fault.addr, page
        )
        if self._check_on:
            if installed:
                self.check.pages.on_read_installed(key)
            else:
                self.check.pages.on_read_dropped(key)
        if self.ops.try_wake(fault):
            self.profiler.record(CodePath.WAKE, self.ops.latency.wake_us)
        else:
            yield from self._timed(CodePath.WAKE, self.ops.wake(fault))
        self.counters.incr("remote_reads")
        yield from self._enforce_policy_caps(registration, True)
        self._maybe_prefetch(fault, registration)

    def _install_unless_present(
        self, registration: VmRegistration, addr: int, page: Page
    ) -> Generator:
        """COPY + LRU-insert, unless a concurrent prefetch already
        installed the page while we waited on the store.

        Returns True when ``page`` itself was installed, False when a
        concurrent resolver won the race and this copy was dropped.
        """
        if addr in registration.table:
            self.counters.incr("duplicate_reads_dropped")
            return False
        done, mapped, cost = self.ops.try_copy(
            registration.table, addr, page, skip_if_present=True
        )
        if not done:
            yield self.env.timeout(cost)
            mapped = self.ops.finish_copy(
                registration.table, addr, page, skip_if_present=True
            )
        self.profiler.record(CodePath.UFFD_COPY, cost)
        if addr not in self.lru:
            self.lru.insert(addr, registration)
        return mapped is page

    def _read_sync_path(
        self, fault: UffdFault, registration: VmRegistration, key: int
    ) -> Generator:
        """Unoptimized (Table II "Default"): everything in sequence."""
        self._fault_paths[fault] = "sync_fetch"
        latency = self.config.latency
        issued_at = self.env.now
        if self._check_on:
            self.check.pages.on_read_issued(key)
        try:
            page = yield from self._fetch_with_retry(registration, key)
        except KeyNotFoundError as exc:
            if self._check_on:
                self.check.pages.on_read_failed(key)
            raise FluidMemError(
                f"remote memory lost page {fault.addr:#x} "
                f"(key {key:#x}) on backend "
                f"{registration.store.name!r} — an evicting store "
                "(e.g. undersized Memcached) cannot back FluidMem"
            ) from exc
        except Exception:
            if self._check_on:
                self.check.pages.on_read_failed(key)
            raise
        self.profiler.record(CodePath.READ_PAGE, self.env.now - issued_at)
        pending = self._charge_fast(
            CodePath.UPDATE_PAGE_CACHE,
            latency.update_page_cache_mean,
            latency.update_page_cache_sigma,
        )
        if pending is not None:
            yield from self._charge_slow(CodePath.UPDATE_PAGE_CACHE, pending)
        page = self._as_page(page, fault.addr)
        pending = self._charge_fast(
            CodePath.INSERT_LRU_CACHE_NODE,
            latency.insert_lru_mean,
            latency.insert_lru_sigma,
        )
        if pending is not None:
            yield from self._charge_slow(
                CodePath.INSERT_LRU_CACHE_NODE, pending
            )
        installed = yield from self._install_unless_present(
            registration, fault.addr, page
        )
        if self._check_on:
            if installed:
                self.check.pages.on_read_installed(key)
            else:
                self.check.pages.on_read_dropped(key)
        # Synchronous eviction *before* the wake: the whole cost sits
        # on the critical path.
        yield from self._evict_until(
            self.lru.capacity, interleaved=False
        )
        if self.ops.try_wake(fault):
            self.profiler.record(CodePath.WAKE, self.ops.latency.wake_us)
        else:
            yield from self._timed(CodePath.WAKE, self.ops.wake(fault))
        self.counters.incr("remote_reads")
        yield from self._enforce_policy_caps(registration, False)
        self._maybe_prefetch(fault, registration)

    def _maybe_prefetch(
        self, fault: UffdFault, registration: VmRegistration
    ) -> None:
        """§V-A future-work extension: pull the sequentially following
        pages from the store before the guest faults on them.

        Runs entirely off the critical path — the faulting vCPU has
        already been woken when this is called.  *Which* addresses to
        pull is the pluggable prefetcher's call; the monitor only
        applies the safety filters (already local, never evicted,
        still on the write list, already in flight).
        """
        prefetcher = self.prefetcher
        if prefetcher is None:
            return
        vm_token = id(registration)
        prefetcher.record_fault(vm_token, fault.addr)
        for addr in prefetcher.candidates(
            vm_token, fault.addr, fault.region
        ):
            if addr in registration.table:
                continue
            key = registration.key_for(addr)
            if self.tracker.is_first_access(key):
                continue  # never evicted: nothing in the store
            if self.writeback.holds(key):
                continue  # still local in the write list
            if not registration.store.contains(key):
                continue
            token = (id(registration), addr)
            if token in self._prefetch_inflight:
                continue
            self._prefetch_inflight.add(token)
            if self._check_on:
                self.check.pages.on_read_issued(key)
            handle = registration.store.read_async(key)
            self.counters.incr("prefetches_issued")
            self.env.process(
                self._finish_prefetch(
                    registration, addr, key, handle, token
                )
            )

    def _trace_prefetch_drop(self, addr: int, key: int, reason: str) -> None:
        """Every silently-dropped prefetch leaves a tracer breadcrumb —
        'the prefetcher did nothing' and 'the prefetcher's work was
        thrown away' look identical in the counters alone."""
        if self._obs_on:
            self.obs.tracer.instant(
                "prefetch_drop", self.env.now, cat="prefetch",
                track=self.name, addr=f"{addr:#x}", key=f"{key:#x}",
                reason=reason,
            )

    def _finish_prefetch(
        self, registration: VmRegistration, addr: int, key: int,
        handle, token,
    ) -> Generator:
        from ..errors import KeyNotFoundError

        try:
            page = yield handle.event
        except KeyNotFoundError:
            self._prefetch_inflight.discard(token)
            self._trace_prefetch_drop(addr, key, "key-lost")
            if self._check_on and registration.active:
                self.check.pages.on_read_failed(key)
            return  # raced with a remove; drop silently
        except TransientStoreError:
            # Prefetch is best-effort: never retry off the fault path.
            self._prefetch_inflight.discard(token)
            self.counters.incr("prefetches_failed")
            self._trace_prefetch_drop(addr, key, "transient-error")
            if self._check_on and registration.active:
                self.check.pages.on_read_failed(key)
            return
        if not registration.active:
            # Torn down mid-flight: its page records are already gone.
            self._prefetch_inflight.discard(token)
            self.counters.incr("prefetches_dropped")
            self._trace_prefetch_drop(addr, key, "vm-inactive")
            return
        if addr in registration.table:
            self._prefetch_inflight.discard(token)
            self.counters.incr("prefetches_dropped")
            self._trace_prefetch_drop(addr, key, "already-present")
            if self._check_on:
                self.check.pages.on_read_dropped(key)
            return
        page = self._as_page(page, addr)
        mapped = yield from self._timed(
            CodePath.UFFD_COPY,
            self.ops.copy(registration.table, addr, page,
                          skip_if_present=True),
        )
        if addr not in self.lru:
            self.lru.insert(addr, registration)
        if mapped is page:
            self._prefetched_addrs.add(token)
        else:
            self._trace_prefetch_drop(addr, key, "install-race")
        if self._check_on:
            if mapped is page:
                self.check.pages.on_read_installed(key)
            else:
                self.check.pages.on_read_dropped(key)
        self._prefetch_inflight.discard(token)
        self.counters.incr("prefetches_completed")
        if self._obs_on:
            self.obs.registry.histogram(
                "path_latency_us", path="async_prefetch", vm=self.name
            ).observe(self.env.now - handle.issued_at)
        yield from self._evict_until(self.lru.capacity, interleaved=False)

    def note_prefetch_hit(
        self, registration: VmRegistration, addr: int
    ) -> None:
        """Credit the prefetcher: a page it installed was touched
        before eviction.  Called by the access ports on LRU hits
        (guarded there on ``_prefetched_addrs`` being non-empty)."""
        token = (id(registration), addr)
        if token in self._prefetched_addrs:
            self._prefetched_addrs.discard(token)
            self.counters.incr("prefetch_hits")

    def _first_touch_via_store(
        self, fault: UffdFault, registration: VmRegistration, key: int
    ) -> Generator:
        """No-tracker ablation: pay a miss round trip, then zero-fill."""
        from ..errors import KeyNotFoundError

        self._fault_paths[fault] = "store_first_touch"
        issued_at = self.env.now
        try:
            page = yield from self._fetch_with_retry(registration, key)
        except KeyNotFoundError:
            page = None
        self.profiler.record(CodePath.READ_PAGE, self.env.now - issued_at)
        self.tracker.mark_seen(key)
        if page is None:
            yield from self._timed(
                CodePath.UFFD_ZEROPAGE,
                self.ops.zeropage(registration.table, fault.addr),
            )
            self.counters.incr("tracker_miss_round_trips")
            if self._check_on:
                self.check.pages.on_zero_fill(key)
        else:
            page = self._as_page(page, fault.addr)
            yield from self._timed(
                CodePath.UFFD_COPY,
                self.ops.copy(registration.table, fault.addr, page),
            )
            if self._check_on:
                self.check.pages.on_probe_installed(key)
        self.lru.insert(fault.addr, registration)
        if self.ops.try_wake(fault):
            self.profiler.record(CodePath.WAKE, self.ops.latency.wake_us)
        else:
            yield from self._timed(CodePath.WAKE, self.ops.wake(fault))
        yield from self._evict_until(self.lru.capacity, interleaved=False)

    def _resolve_from_steal(
        self,
        fault: UffdFault,
        registration: VmRegistration,
        steal: StealResult,
    ) -> Generator:
        """§V-B: the faulted page is on the write list."""
        self._fault_paths[fault] = (
            "steal_local" if steal.state == StealResult.PENDING
            else "steal_wait"
        )
        if self._obs_on:
            self.obs.tracer.instant(
                "batch_steal", self.env.now, cat="writeback",
                track=self.name, state=steal.state,
                key=f"{steal.entry.key:#x}",
            )
        if steal.state == StealResult.PENDING:
            # Still buffered: move it straight back, zero copy.
            yield from self._timed(
                CodePath.UFFD_REMAP,
                self.ops.remap_out(
                    self.buffer_table,
                    steal.entry.buffer_vaddr,
                    registration.table,
                    fault.addr,
                    interleaved=True,
                ),
            )
            self.counters.incr("steals_resolved_locally")
        else:
            # In flight: "no other choice than to wait for the write to
            # complete", then resume immediately with the page.
            if not steal.completion.processed:
                yield steal.completion
            yield from self._timed(
                CodePath.UFFD_COPY,
                self.ops.copy(
                    registration.table, fault.addr, steal.entry.page
                ),
            )
            if self._check_on:
                self.check.pages.on_steal_installed(steal.entry.key)
            self.counters.incr("steals_after_wait")
        self.lru.insert(fault.addr, registration)
        if self.ops.try_wake(fault):
            self.profiler.record(CodePath.WAKE, self.ops.latency.wake_us)
        else:
            yield from self._timed(CodePath.WAKE, self.ops.wake(fault))
        yield from self._evict_until(self.lru.capacity, interleaved=False)
        yield from self._enforce_policy_caps(registration, False)

    # -- eviction -----------------------------------------------------------------

    def _evict_until(self, target: int, interleaved: bool) -> Generator:
        while len(self.lru) > target:
            yield from self._evict_one(interleaved)

    def _enforce_policy_caps(
        self, registration: VmRegistration, interleaved: bool
    ) -> Generator:
        """Evict a capped VM back under its per-VM limit (policy §III)."""
        if self.victim_policy is None:
            return
        while self.victim_policy.enforce_cap(self.lru, registration) > 0:
            candidate = self.lru.pop_oldest_of(registration)
            if candidate is None:
                return
            yield from self._evict_entry(candidate[0], registration,
                                         interleaved)
            self.counters.incr("cap_evictions")

    def _evict_one(self, interleaved: bool) -> Generator:
        if self.victim_policy is not None:
            candidate = self.victim_policy.select_victim(self.lru)
        else:
            candidate = self.lru.pop_eviction_candidate()
        if candidate is None:
            return
        vaddr, registration = candidate
        yield from self._evict_entry(vaddr, registration, interleaved)

    def _evict_entry(
        self,
        vaddr: int,
        registration: VmRegistration,
        interleaved: bool,
    ) -> Generator:
        evict_started = self.env.now
        if self._prefetched_addrs:
            # A never-touched prefetched page going back out was
            # wasted work (and a wasted store round trip).
            token = (id(registration), vaddr)
            if token in self._prefetched_addrs:
                self._prefetched_addrs.discard(token)
                self.counters.incr("prefetches_wasted")
        buffer_vaddr = self._take_buffer_slot()
        done, page, cost = self.ops.try_remap_out(
            registration.table,
            vaddr,
            self.buffer_table,
            buffer_vaddr,
            interleaved=interleaved,
        )
        if not done:
            # Pay the already-drawn cost as a plain timeout, then apply
            # just the mutation — no ioctl generator on the slow path.
            yield self.env.timeout(cost)
            page = self.ops.finish_remap_out(
                registration.table, vaddr, self.buffer_table, buffer_vaddr
            )
        self.profiler.record(CodePath.UFFD_REMAP, cost)
        key = registration.key_for(vaddr)
        self.counters.incr("evictions")
        if self.config.async_writeback:
            if self._check_on:
                self.check.pages.on_evicted(key, durable=False)
            self.writeback.enqueue(
                WritebackEntry(
                    key, page, buffer_vaddr, registration, self.env.now
                )
            )
        else:
            issued_at = self.env.now
            yield from self._put_with_retry(registration, key, page)
            if self._check_on:
                self.check.pages.on_evicted(key, durable=True)
            self.profiler.record(
                CodePath.WRITE_PAGE, self.env.now - issued_at
            )
            pte = self.buffer_table.unmap(buffer_vaddr)
            self.ops.frames.free(pte.frame)
            self._release_buffer_slot(buffer_vaddr)
        if self._obs_on:
            self.obs.registry.histogram(
                "path_latency_us", path="eviction", vm=self.name
            ).observe(self.env.now - evict_started)

    def _evict_burst(self, target: int, interleaved: bool) -> Generator:
        """Flat eviction cohort: :meth:`_evict_until` with the
        :meth:`_evict_one` → :meth:`_evict_entry` generator chain
        unrolled into one loop (DESIGN.md §17).

        Byte-equivalent to the granular chain — same RNG draws, same
        charge order, same counter/check/metrics effects per victim —
        minus two generator frames and the repeated attribute lookups
        per evicted page.  Only the flat burst path calls this; the
        granular service path keeps the original chain.
        """
        lru = self.lru
        if len(lru) <= target:
            return
        env = self.env
        ops = self.ops
        victim_policy = self.victim_policy
        async_wb = self.config.async_writeback
        check_on = self._check_on
        obs_on = self._obs_on
        sample_remap = ops.latency.sample_remap
        uffd_rng = ops._rng
        try_advance = env.try_advance
        finish_remap_out = ops.finish_remap_out
        record_remap = self._ob_remap or self._mk_observer(
            "_ob_remap", CodePath.UFFD_REMAP
        )
        incr = self.counters.incr
        buffer_table = self.buffer_table
        enqueue = self.writeback.enqueue
        entries = lru._entries
        while len(entries) > target:
            if victim_policy is not None:
                candidate = victim_policy.select_victim(lru)
            else:
                candidate = lru.pop_eviction_candidate()
            if candidate is None:
                return
            vaddr, registration = candidate
            evict_started = env._now
            if self._prefetched_addrs:
                token = (id(registration), vaddr)
                if token in self._prefetched_addrs:
                    self._prefetched_addrs.discard(token)
                    incr("prefetches_wasted")
            buffer_vaddr = self._take_buffer_slot()
            cost = sample_remap(uffd_rng, interleaved)
            if not try_advance(cost):
                yield env.timeout(cost)
            page = finish_remap_out(
                registration.table, vaddr, buffer_table, buffer_vaddr
            )
            record_remap(cost)
            key = registration.key_for(vaddr)
            incr("evictions")
            if async_wb:
                if check_on:
                    self.check.pages.on_evicted(key, durable=False)
                enqueue(
                    WritebackEntry(
                        key, page, buffer_vaddr, registration, env._now
                    )
                )
            else:
                issued_at = env._now
                yield from self._put_with_retry(registration, key, page)
                if check_on:
                    self.check.pages.on_evicted(key, durable=True)
                (self._ob_write or self._mk_observer(
                    "_ob_write", CodePath.WRITE_PAGE,
                ))(env._now - issued_at)
                pte = buffer_table.unmap(buffer_vaddr)
                ops.frames.free(pte.frame)
                self._release_buffer_slot(buffer_vaddr)
            if obs_on:
                hist = self._h_evict_latency
                if hist is None:
                    hist = self._h_evict_latency = (
                        self.obs.registry.histogram(
                            "path_latency_us", path="eviction",
                            vm=self.name,
                        )
                    )
                hist.observe(env._now - evict_started)

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _as_page(value: object, vaddr: int) -> Page:
        """Store values are Page objects; tolerate raw tokens in tests."""
        if isinstance(value, Page):
            return value
        page = Page(vaddr=vaddr)
        page.write()
        return page

    def _charge_fast(
        self, path: CodePath, mean: float, sigma: float
    ) -> Optional[float]:
        """Non-generator handler-time charge.

        Returns ``None`` when the clock bump settled without any event
        machinery, else the drawn sample for :meth:`_charge_slow` — the
        RNG stream is part of the determinism contract and must never
        see a redraw.
        """
        sample = max(0.05, self._rng.gauss(mean, sigma))
        if self.env.try_advance(sample):
            self.profiler.record(path, sample)
            return None
        return sample

    def _charge_slow(self, path: CodePath, sample: float) -> Generator:
        yield self.env.timeout(sample)
        self.profiler.record(path, sample)

    def _charge(
        self, path: CodePath, mean: float, sigma: float
    ) -> Generator:
        # A pure handler-time charge: skip the event machinery when the
        # clock bump is provably equivalent to the timeout it replaces.
        pending = self._charge_fast(path, mean, sigma)
        if pending is not None:
            yield from self._charge_slow(path, pending)

    def _timed(self, path: CodePath, operation: Generator) -> Generator:
        started = self.env.now
        result = yield from operation
        self.profiler.record(path, self.env.now - started)
        return result

    # -- introspection ----------------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        return len(self.lru)

    def stats(self) -> Dict[str, object]:
        """One-call operational snapshot (what a /metrics endpoint or
        the provider console would scrape)."""
        summary: Dict[str, object] = {
            "resident_pages": len(self.lru),
            "lru_capacity": self.lru.capacity,
            "registered_vms": len(self._registrations),
            "tracked_pages": len(self.tracker),
            "writeback_pending": self.writeback.pending_count,
            "writeback_in_flight": self.writeback.in_flight_count,
            "host_frames_used": self.ops.frames.used_frames,
            "host_frames_total": self.ops.frames.total_frames,
            "quarantined_vms": sum(
                1 for registration in self._registrations
                if registration.quarantined
            ),
            "fault_handlers": self.config.fault_handlers,
            "prefetch_policy": (
                "none" if self.prefetcher is None else self.prefetcher.name
            ),
            "frame_fragmentation": self.ops.frames.fragmentation(),
            "counters": self.counters.as_dict(),
        }
        if self.fault_latency.count:
            summary["fault_latency_avg_us"] = self.fault_latency.mean
            summary["fault_latency_p99_us"] = (
                self.fault_latency.percentile(99.0)
            )
        per_vm = {}
        for registration in self._registrations:
            per_vm[registration.qemu.pid] = {
                "resident_pages": self.lru.count_for(registration),
                "store": registration.store.name,
                "store_keys": registration.store.stored_keys(),
                "quarantined": registration.quarantined,
            }
        summary["vms"] = per_vm
        return summary

    def __repr__(self) -> str:
        return (
            f"<Monitor {self.name!r} lru={len(self.lru)}/"
            f"{self.lru.capacity} vms={len(self._registrations)}>"
        )
