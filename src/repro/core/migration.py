"""FluidMem-assisted VM migration (extension; paper §VII).

The paper observes that live migration and memory disaggregation are
complementary: "LM is capable of moving execution and memory
disaggregation can offload memory from the hypervisor."  With FluidMem,
a VM's memory already lives (mostly) in a key-value store reachable
from any hypervisor, so moving the VM means moving only its *residency*:

1. the source monitor drains its write list and pushes the VM's
   still-resident pages to the shared store (the blackout window),
2. the destination QEMU maps guest RAM at the same addresses (so the
   52-bit page keys match) and registers with the destination monitor,
3. the destination's pagetracker is primed with the source's seen-keys
   set, so post-switch-over faults are resolved from the store — the
   post-copy pattern userfaultfd was originally built for (§VII).

The returned report separates *blackout* (guest frozen) from *warm-up*
(guest running, pages faulting back on demand).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..errors import FluidMemError
from ..vm import GuestVM, QemuProcess
from .monitor import Monitor, VmRegistration
from .port import FluidMemoryPort

__all__ = ["MigrationReport", "migrate_vm"]


@dataclass
class MigrationReport:
    """What the migration cost."""

    blackout_us: float
    pages_pushed: int
    seen_pages: int
    source_monitor: Monitor
    dest_monitor: Monitor
    dest_qemu: QemuProcess
    dest_registration: VmRegistration

    @property
    def blackout_ms(self) -> float:
        return self.blackout_us / 1000.0


def migrate_vm(
    vm: GuestVM,
    source_monitor: Monitor,
    source_registration: VmRegistration,
    dest_monitor: Monitor,
    dest_store: Optional[object] = None,
    partition: int = 0,
) -> Generator:
    """Move ``vm`` from one monitor (hypervisor) to another.

    ``dest_store`` defaults to the source's store — the normal case:
    the remote-memory store is shared infrastructure and only residency
    moves.  A simulation generator; returns a :class:`MigrationReport`.
    """
    if source_monitor is dest_monitor:
        raise FluidMemError("source and destination monitors are the same")
    if not source_registration.active:
        raise FluidMemError("VM is not registered at the source")
    store = dest_store or source_registration.store
    if store is not source_registration.store:
        raise FluidMemError(
            "cross-store migration is not supported: the store is the "
            "shared substrate; move residency, not data"
        )
    env = source_monitor.env

    # --- blackout: freeze, push residual pages, detach ------------------
    blackout_started = env.now
    source_qemu = source_registration.qemu
    seen_keys, pushed = yield from source_monitor.detach_vm(
        source_registration
    )

    # --- destination side: same RAM layout, same keys --------------------
    dest_qemu = QemuProcess(vm, ram_base=source_qemu.ram_base)
    for region in source_qemu.ram_regions[1:]:
        # Recreate hotplug slots so the layouts match exactly.
        dest_qemu.add_ram_region(region.length, region.name)
    dest_registration = dest_monitor.attach_vm(
        dest_qemu, store, seen_keys, partition=partition
    )
    blackout_us = env.now - blackout_started

    # --- switch the VM's port: execution now faults on the destination --
    port = FluidMemoryPort(env, vm, dest_qemu, dest_monitor,
                           dest_registration)
    vm.port = port

    return MigrationReport(
        blackout_us=blackout_us,
        pages_pushed=pushed,
        seen_pages=len(seen_keys),
        source_monitor=source_monitor,
        dest_monitor=dest_monitor,
        dest_qemu=dest_qemu,
        dest_registration=dest_registration,
    )
