"""The monitor's resizable LRU buffer (paper §V-A).

Despite the name, the paper's list is **insertion ordered**: "the LRU
list is only updated when a page is seen by the monitor process, which
only happens on first access and after an eviction ... At present, the
internal ordering of the list does not change."  Among resident pages
this behaves like FIFO — the design limitation the paper itself calls
out when guest kswapd beats it at victim selection (Fig. 4c/d).

Capacity is resizable at runtime; shrinking is how a provider squeezes a
VM to a near-zero footprint (Table III).  An optional
``reorder_on_access`` mode exists purely for the ablation benchmark that
quantifies what true LRU ordering would buy.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from ..check.invariants import NULL_CHECKER, CorrectnessChecker
from ..errors import FluidMemError
from ..obs import NULL_OBS, Observability

__all__ = ["LruBuffer", "LruEntry"]

#: An entry is (host_vaddr, registration_token); the monitor needs to
#: know which VM a victim belongs to.
LruEntry = Tuple[int, object]


class LruBuffer:
    """Insertion-ordered bounded buffer of resident pages."""

    def __init__(
        self,
        capacity_pages: int,
        reorder_on_access: bool = False,
        obs: Optional[Observability] = None,
        name: str = "lru",
        check: Optional[CorrectnessChecker] = None,
    ) -> None:
        if capacity_pages < 1:
            raise FluidMemError(
                f"capacity must be >= 1 page, got {capacity_pages}"
            )
        self._capacity = capacity_pages
        self.reorder_on_access = reorder_on_access
        self._entries: "OrderedDict[int, object]" = OrderedDict()
        #: Resident pages per registration (provider-policy accounting).
        self._per_registration: Dict[int, int] = {}
        self._obs = obs if obs is not None else NULL_OBS
        self._check = check if check is not None else NULL_CHECKER
        self._name = name
        # ``enabled`` is fixed at construction for both sinks; cache it
        # so insert/remove pay one bool load, not two attribute loads.
        self._obs_on = self._obs.enabled
        self._check_on = self._check.enabled
        # Instruments are get-or-create in the registry; cache them on
        # first use (lazily, so a buffer that never inserts leaves the
        # same registry contents as before).
        self._c_inserts = None
        self._c_removals = None
        self._g_resident = None
        if self._obs_on:
            self._obs.registry.gauge(
                "lru_capacity_pages", vm=name
            ).set(capacity_pages)

    # -- capacity ----------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def resize(self, capacity_pages: int) -> None:
        """Change the DRAM budget; overflow is evicted by the monitor."""
        if capacity_pages < 1:
            raise FluidMemError(
                f"capacity must be >= 1 page, got {capacity_pages}"
            )
        self._capacity = capacity_pages
        if self._obs_on:
            self._obs.registry.gauge(
                "lru_capacity_pages", vm=self._name
            ).set(capacity_pages)

    @property
    def overflow(self) -> int:
        """How many pages are over budget right now."""
        return max(0, len(self._entries) - self._capacity)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vaddr: int) -> bool:
        return vaddr in self._entries

    # -- membership ----------------------------------------------------------

    def insert(self, vaddr: int, registration: object) -> None:
        """Add a page at the MRU end (first access or post-eviction)."""
        if vaddr in self._entries:
            raise FluidMemError(
                f"{vaddr:#x} is already in the LRU buffer"
            )
        self._entries[vaddr] = registration
        key = id(registration)
        self._per_registration[key] = self._per_registration.get(key, 0) + 1
        if self._check_on:
            self._verify_accounting()
        if self._obs_on:
            counter = self._c_inserts
            if counter is None:
                counter = self._c_inserts = self._obs.registry.counter(
                    "lru_inserts", vm=self._name
                )
            counter.inc()
            self._gauge_resident().set(len(self._entries))

    def note_access(self, vaddr: int) -> None:
        """Ablation hook: with reordering on, move the page to MRU.

        In the paper's design this is a no-op — the monitor never even
        sees accesses to resident pages.
        """
        if self.reorder_on_access and vaddr in self._entries:
            self._entries.move_to_end(vaddr)

    def remove(self, vaddr: int) -> object:
        """Drop a page (it was evicted or its VM shut down)."""
        try:
            registration = self._entries.pop(vaddr)
        except KeyError:
            raise FluidMemError(
                f"{vaddr:#x} is not in the LRU buffer"
            ) from None
        self._account_removal(registration)
        return registration

    def discard_registration(self, registration: object) -> List[int]:
        """Remove every page of one VM (deregistration); returns them."""
        doomed = [
            vaddr
            for vaddr, reg in self._entries.items()
            if reg is registration
        ]
        for vaddr in doomed:
            del self._entries[vaddr]
        self._per_registration.pop(id(registration), None)
        if self._check_on:
            self._verify_accounting()
        if self._obs_on:
            self._gauge_resident().set(len(self._entries))
        return doomed

    def _gauge_resident(self):
        gauge = self._g_resident
        if gauge is None:
            gauge = self._g_resident = self._obs.registry.gauge(
                "lru_resident_pages", vm=self._name
            )
        return gauge

    def count_for(self, registration: object) -> int:
        """Resident pages belonging to one VM."""
        return self._per_registration.get(id(registration), 0)

    def _verify_accounting(self) -> None:
        """The per-VM counts must tile the buffer exactly."""
        total = sum(self._per_registration.values())
        if total != len(self._entries):
            self._check.violation(
                "lru-accounting",
                f"per-VM resident counts sum to {total} but the "
                f"buffer holds {len(self._entries)} pages",
                per_vm_total=total, resident=len(self._entries),
            )
        negative = [
            key for key, count in self._per_registration.items()
            if count <= 0
        ]
        if negative:
            self._check.violation(
                "lru-accounting",
                f"{len(negative)} registration(s) carry a non-positive "
                "resident count",
                count=len(negative),
            )

    def _account_removal(self, registration: object) -> None:
        key = id(registration)
        remaining = self._per_registration.get(key, 0) - 1
        if remaining <= 0:
            self._per_registration.pop(key, None)
        else:
            self._per_registration[key] = remaining
        if self._check_on:
            self._verify_accounting()
        if self._obs_on:
            counter = self._c_removals
            if counter is None:
                counter = self._c_removals = self._obs.registry.counter(
                    "lru_removals", vm=self._name
                )
            counter.inc()
            self._gauge_resident().set(len(self._entries))

    # -- eviction ------------------------------------------------------------

    def pop_eviction_candidate(self) -> Optional[LruEntry]:
        """Take the page at the top (oldest end) of the list, if any."""
        if not self._entries:
            return None
        vaddr, registration = self._entries.popitem(last=False)
        self._account_removal(registration)
        return vaddr, registration

    def pop_oldest_of(self, registration: object) -> Optional[LruEntry]:
        """Take the oldest page belonging to one specific VM."""
        for vaddr, reg in self._entries.items():
            if reg is registration:
                del self._entries[vaddr]
                self._account_removal(reg)
                return vaddr, reg
        return None

    def eviction_candidates(self, count: int) -> List[LruEntry]:
        """Peek at the ``count`` oldest entries without removing them."""
        if count < 0:
            raise FluidMemError(f"count must be >= 0, got {count}")
        result: List[LruEntry] = []
        for vaddr, registration in self._entries.items():
            if len(result) >= count:
                break
            result.append((vaddr, registration))
        return result

    def __iter__(self) -> Iterator[LruEntry]:
        return iter(self._entries.items())

    def __repr__(self) -> str:
        return (
            f"<LruBuffer {len(self._entries)}/{self._capacity} pages"
            f"{' reordering' if self.reorder_on_access else ''}>"
        )
