"""Asynchronous write-back (paper §V-B).

"Rather than waiting for the write to complete before handling the next
page fault, the critical path in the monitor only evicts the page from
the VM and puts the page on a write list before moving on.  A separate
thread periodically flushes the write list to the key-value store when
its size has reached a configured batch size of pages or a stale file
descriptor has been found."

Implementation notes:

* Batches group entries by VM registration so RAMCloud's multi-write
  operates on "pages belonging to the same userfaultfd region".
* The stale check is piggybacked on monitor activity (``check_stale``)
  instead of a free-running timer, so an idle simulation drains cleanly.
* Page **stealing**: a fault on a page still in ``pending`` takes it
  back directly (shortcutting two network round trips); a fault on a
  page in an in-flight batch must wait for the batch to complete and
  then resumes immediately with the buffered copy.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Dict, Generator, List, Optional, Tuple

from ..check.invariants import NULL_CHECKER, CorrectnessChecker
from ..errors import FluidMemError, StoreUnavailableError
from ..faults.retry import RetryPolicy, retry_call
from ..mem import FrameAllocator, Page, PageTable
from ..obs import NULL_OBS, Observability
from ..sim import Environment, Event, Store
from .profiling import CodePath, Profiler

__all__ = ["WritebackEntry", "StealResult", "WritebackQueue"]


class WritebackEntry:
    """One evicted page parked in the monitor's user-space buffer."""

    __slots__ = ("key", "page", "buffer_vaddr", "registration", "queued_at")

    def __init__(
        self,
        key: int,
        page: Page,
        buffer_vaddr: int,
        registration: object,
        queued_at: float,
    ) -> None:
        self.key = key
        self.page = page
        self.buffer_vaddr = buffer_vaddr
        self.registration = registration
        self.queued_at = queued_at


class StealResult:
    """Outcome of a steal attempt."""

    __slots__ = ("state", "entry", "completion")

    #: Entry was still pending: taken synchronously.
    PENDING = "pending"
    #: Entry is in an in-flight batch: wait for ``completion``.
    IN_FLIGHT = "in-flight"

    def __init__(
        self,
        state: str,
        entry: WritebackEntry,
        completion: Optional[Event] = None,
    ) -> None:
        self.state = state
        self.entry = entry
        self.completion = completion


class WritebackQueue:
    """The write list plus its flusher process."""

    def __init__(
        self,
        env: Environment,
        buffer_table: PageTable,
        frames: FrameAllocator,
        batch_pages: int,
        stale_us: float,
        retry_policy: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        profiler: Optional[Profiler] = None,
        obs: Optional[Observability] = None,
        owner: str = "monitor",
        check: Optional[CorrectnessChecker] = None,
        slot_free=None,
    ) -> None:
        if batch_pages < 1:
            raise FluidMemError(f"batch must be >= 1, got {batch_pages}")
        self.env = env
        self.buffer_table = buffer_table
        self.frames = frames
        self.batch_pages = batch_pages
        self.stale_us = stale_us
        #: When set, flushes retry transient store failures with this
        #: policy; a batch whose retries exhaust is re-enqueued (the
        #: buffered pages are NOT dropped) before the error surfaces.
        self.retry_policy = retry_policy
        self._rng = rng
        self._profiler = profiler
        self.obs = obs if obs is not None else NULL_OBS
        self.owner = owner
        self.check = check if check is not None else NULL_CHECKER
        #: Optional callback invoked with each buffer vaddr once its
        #: frame is released (the monitor's buffer-slot recycler).
        self._slot_free = slot_free
        self._pending: "OrderedDict[int, WritebackEntry]" = OrderedDict()
        self._in_flight: Dict[int, Tuple[WritebackEntry, Event]] = {}
        # A token channel so kicks raised before the flusher arms its
        # wait are never lost.
        self._kicks = Store(env)
        self._flusher = env.process(self._run())
        self.counters = self.obs.counters_for(
            vm=owner, component="writeback"
        )

    # -- producer side (the monitor's eviction path) ---------------------------

    def enqueue(self, entry: WritebackEntry) -> None:
        if entry.key in self._pending or entry.key in self._in_flight:
            raise FluidMemError(
                f"key {entry.key:#x} is already queued for write-back"
            )
        self._pending[entry.key] = entry
        if self.check.enabled:
            self.check.writeback.on_enqueued(entry.key)
        self.counters.incr("enqueued")
        if len(self._pending) >= self.batch_pages:
            self._wake_flusher()

    def check_stale(self) -> None:
        """Flush early if the oldest pending write has gone stale."""
        if not self._pending:
            return
        oldest = next(iter(self._pending.values()))
        if self.env.now - oldest.queued_at >= self.stale_us:
            self._wake_flusher()

    def steal(self, key: int) -> Optional[StealResult]:
        """Try to resolve a fault from the write list (paper §V-B)."""
        entry = self._pending.pop(key, None)
        if entry is not None:
            if self.check.enabled:
                self.check.pages.on_steal_pending(key)
                self.check.writeback.on_stolen(key)
            self.counters.incr("steals_pending")
            return StealResult(StealResult.PENDING, entry)
        in_flight = self._in_flight.get(key)
        if in_flight is not None:
            entry, completion = in_flight
            self.counters.incr("steals_in_flight")
            return StealResult(StealResult.IN_FLIGHT, entry, completion)
        return None

    # -- introspection -------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    def holds(self, key: int) -> bool:
        return key in self._pending or key in self._in_flight

    # -- flusher ----------------------------------------------------------------

    def _wake_flusher(self) -> None:
        if not self._kicks.items:  # coalesce outstanding kicks
            self._kicks.put(None)

    def _run(self) -> Generator:
        while True:
            yield self._kicks.get()
            if self._pending and self._should_flush():
                # Once triggered, drain the whole list (in per-region
                # batches) — "flushes the write list ... when its size
                # has reached a configured batch size".
                while self._pending:
                    yield from self._flush_batch()

    def _should_flush(self) -> bool:
        if len(self._pending) >= self.batch_pages:
            return True
        oldest = next(iter(self._pending.values()))
        return self.env.now - oldest.queued_at >= self.stale_us

    def _flush_batch(self) -> Generator:
        """Take up to a batch (single registration) and multi-write it."""
        batch: List[WritebackEntry] = []
        registration = None
        for key in list(self._pending):
            entry = self._pending[key]
            if registration is None:
                registration = entry.registration
            if entry.registration is not registration:
                continue  # next batch; multi-write is per region
            del self._pending[key]
            batch.append(entry)
            if len(batch) >= self.batch_pages:
                break
        if not batch:
            return

        completion = self.env.event()
        for entry in batch:
            self._in_flight[entry.key] = (entry, completion)

        flush_started = self.env.now
        store = registration.store  # type: ignore[attr-defined]
        items = [(entry.key, entry.page, 4096) for entry in batch]
        try:
            yield from self._write_items(store, items)
        except StoreUnavailableError as exc:
            # Retries exhausted.  The pages are still buffered: put the
            # batch back at the FRONT of the write list so nothing is
            # lost — a recovered store (or a drain after the fault
            # window closes) flushes them later — then surface the
            # failure.  The completion is defused because a waiter may
            # not be attached.
            self._requeue(batch)
            completion._defused = True
            completion.fail(exc)
            raise
        except Exception as exc:
            completion.fail(exc)
            raise
        finally:
            for entry in batch:
                self._in_flight.pop(entry.key, None)

        # Release the buffered copies now that the store is durable.
        if self.check.enabled:
            for entry in batch:
                self.check.pages.on_writeback_durable(entry.key)
                self.check.writeback.on_durable(entry.key)
        for entry in batch:
            pte = self.buffer_table.unmap(entry.buffer_vaddr)
            self.frames.free(pte.frame)
            if self._slot_free is not None:
                self._slot_free(entry.buffer_vaddr)
        self.counters.incr("flushed", by=len(batch))
        self.counters.incr("batches")
        if self.obs.enabled:
            duration = self.env.now - flush_started
            self.obs.registry.histogram(
                "path_latency_us", path="writeback_flush", vm=self.owner
            ).observe(duration)
            self.obs.tracer.complete(
                "writeback_flush", flush_started, duration,
                cat="writeback", track=f"{self.owner}/writeback",
                pages=len(batch), store=store.name,
            )
        completion.succeed(len(batch))

    def _write_items(self, store, items: List[Tuple]) -> Generator:
        """One multi-write, retried under the queue's policy if set."""
        if self.retry_policy is None:
            yield from store.multi_write(items)
            return

        def on_retry(attempt: int, delay_us: float, exc: Exception) -> None:
            self.counters.incr("flush_retries")
            if self._profiler is not None:
                self._profiler.record(CodePath.WRITE_RETRY, delay_us)
            if self.obs.enabled:
                self.obs.registry.histogram(
                    "path_latency_us", path="retry_backoff",
                    vm=self.owner,
                ).observe(delay_us)
                self.obs.tracer.instant(
                    "retry", self.env.now, cat="resilience",
                    track=f"{self.owner}/writeback",
                    op=CodePath.WRITE_RETRY.value, attempt=attempt,
                    error=type(exc).__name__,
                )

        yield from retry_call(
            self.env,
            lambda: store.multi_write(list(items)),
            self.retry_policy,
            rng=self._rng,
            on_retry=on_retry,
            what=f"write-back flush of {len(items)} page(s) to "
                 f"{store.name!r}",
            obs=self.obs,
            op=CodePath.WRITE_RETRY.value,
        )

    def _requeue(self, batch: List[WritebackEntry]) -> None:
        """Put a failed batch back at the front of the write list."""
        for entry in reversed(batch):
            self._pending[entry.key] = entry
            self._pending.move_to_end(entry.key, last=False)
        if self.check.enabled:
            self.check.writeback.on_requeued(
                [entry.key for entry in batch]
            )
        self.counters.incr("reenqueued", by=len(batch))
        if self.obs.enabled:
            self.obs.tracer.instant(
                "writeback_reenqueue", self.env.now, cat="writeback",
                track=f"{self.owner}/writeback", pages=len(batch),
            )

    def wait_durable(self, key: int) -> Generator:
        """Block until ``key`` is safely in the store.

        Used when write-list stealing is disabled: a fault on a page
        with a pending write has "no other choice than to wait for the
        write to complete" (§V-B) before reading it back.
        """
        while self.holds(key):
            in_flight = self._in_flight.get(key)
            if in_flight is not None:
                _entry, completion = in_flight
                if not completion.processed:
                    yield completion
                continue
            # Still pending: push batches out until ours goes.
            yield from self._flush_batch()

    def drain(self) -> Generator:
        """Flush everything and wait (used at shutdown / in tests)."""
        while self._pending:
            yield from self._flush_batch()
        # In-flight batches were flushed by this coroutine or the
        # flusher; wait for any the flusher still owns.
        while self._in_flight:
            _entry, completion = next(iter(self._in_flight.values()))
            if not completion.processed:
                yield completion
            else:  # pragma: no cover - defensive
                yield self.env.timeout(0.1)
