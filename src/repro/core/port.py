"""The VM-side view of FluidMem: a :class:`~repro.vm.MemoryPort`.

Workloads and service probes talk to this port with guest-physical
addresses; it translates to the QEMU process's host virtual space,
checks residency against the host page table, and on a miss halts the
"vCPU" on a userfaultfd fault until the monitor resolves it.

It also owns the KVM quirk from Table III: with hardware-assisted
virtualization and a 1-page footprint, handling a page fault can itself
trigger page faults — a deadlock.  Full (software) emulation survives.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..errors import VcpuDeadlockError
from ..mem import PageKind
from ..sim import Environment
from ..vm import GuestVM, MemoryPort, QemuProcess, VirtMode
from .monitor import Monitor, VmRegistration

__all__ = ["FluidMemoryPort"]


class FluidMemoryPort(MemoryPort):
    """Guest memory access through the FluidMem fault machinery."""

    def __init__(
        self,
        env: Environment,
        vm: GuestVM,
        qemu: QemuProcess,
        monitor: Monitor,
        registration: VmRegistration,
    ) -> None:
        self.env = env
        self.vm = vm
        self.qemu = qemu
        self.monitor = monitor
        self.registration = registration
        #: Batching diagnostics (note_hit_run): how many coalesced hit
        #: runs retired and how many pages they covered.  Deliberately
        #: not wired into the metrics registry — benchmark output must
        #: be identical whether callers batch or not.
        self.hit_runs = 0
        self.hit_run_pages = 0

    # -- address handling -------------------------------------------------------

    def _host_addr(self, guest_addr: int) -> int:
        return self.qemu.guest_to_host(guest_addr)

    # -- MemoryPort API ------------------------------------------------------------

    def is_resident(self, vaddr: int) -> bool:
        return self._host_addr(vaddr) in self.qemu.page_table

    def touch(self, vaddr: int, is_write: bool = False) -> None:
        host = self._host_addr(vaddr)
        page = self.qemu.page_table.entry(host).page
        if is_write:
            page.write()
        else:
            page.read()
        # No-op unless the LRU-reordering ablation is enabled.
        self.monitor.lru.note_access(host)

    def try_access(
        self,
        vaddr: int,
        is_write: bool = False,
        kind: PageKind = PageKind.ANONYMOUS,
    ) -> bool:
        """Non-generator mirror of :meth:`access`'s LRU-hit branch."""
        host = self._host_addr(vaddr)
        if host in self.qemu.page_table:
            self.monitor.counters.incr("lru_hits")
            if self.monitor._prefetched_addrs:
                self.monitor.note_prefetch_hit(self.registration, host)
            self.touch(vaddr, is_write)
            return True
        return False

    def note_hit_run(self, count: int) -> None:
        self.hit_runs += 1
        self.hit_run_pages += count

    def access(
        self,
        vaddr: int,
        is_write: bool = False,
        kind: PageKind = PageKind.ANONYMOUS,
    ) -> Generator:
        """Access a guest page; blocks through the fault path on a miss.

        ``kind`` is accepted for interface parity with the swap port but
        deliberately ignored: FluidMem treats every page identically —
        that indifference *is* full memory disaggregation.
        """
        host = self._host_addr(vaddr)
        if host in self.qemu.page_table:
            # Resident: the monitor never sees this access — the whole
            # point of keeping hot pages local (the "LRU hit" path).
            self.monitor.counters.incr("lru_hits")
            if self.monitor._prefetched_addrs:
                self.monitor.note_prefetch_hit(self.registration, host)
            self.touch(vaddr, is_write)
            return None

        if (
            self.vm.virt_mode is VirtMode.KVM
            and self.monitor.lru.capacity < 2
        ):
            # Table III, last row: KVM hardware-assisted virtualization
            # deadlocks at a 1-page footprint because resolving a fault
            # triggers further faults.
            raise VcpuDeadlockError(
                f"{self.vm.name}: KVM fault handling deadlocks with a "
                f"{self.monitor.lru.capacity}-page footprint"
            )

        # The VM exit + vCPU halt before the kernel sees the fault.
        vm_exit_us = self.monitor.config.latency.vm_exit_overhead
        if not self.env.try_advance(vm_exit_us):
            yield self.env.timeout(vm_exit_us)
        fault = self.monitor.uffd.raise_fault(
            host, self.qemu.pid, is_write
        )
        yield fault.resolved
        # The access retires on the freshly mapped page.
        page = self.qemu.page_table.entry(host).page
        if is_write:
            page.write()
        else:
            page.read()
        return page

    @property
    def resident_capacity(self) -> Optional[int]:
        return self.monitor.lru.capacity

    @property
    def resident_pages(self) -> int:
        """Pages of *this* VM currently in DRAM."""
        return self.qemu.page_table.present_pages
