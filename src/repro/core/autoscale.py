"""Autoscaling the DRAM budget: "flexibly and efficiently grow and
shrink the memory footprint of a VM as defined by a cloud provider"
(paper abstract).

The monitor's resizable LRU gives the provider a single knob; the
:class:`Autoscaler` turns it automatically: it samples the monitor's
fault *rate* on a fixed interval and

* **grows** the budget when the VM is thrashing (fault rate above
  ``grow_threshold``), giving it DRAM while demand lasts,
* **shrinks** when the VM goes quiet (below ``shrink_threshold``),
  harvesting idle DRAM for other tenants — the Table III scenario made
  continuous.

The controller is deliberately simple (threshold + fixed step with
hysteresis); the interesting part is that FluidMem makes the actuator
— instantaneous, guest-invisible resizing — possible at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from ..errors import FluidMemError
from ..sim import Environment
from .monitor import Monitor

__all__ = ["AutoscaleConfig", "Autoscaler"]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Controller parameters."""

    #: Sampling interval (µs).
    interval_us: float = 50_000.0
    #: Faults per millisecond above which the budget grows.
    grow_threshold: float = 2.0
    #: Faults per millisecond below which the budget shrinks.
    shrink_threshold: float = 0.2
    #: Pages added/removed per adjustment.
    step_pages: int = 64
    #: Budget bounds.
    min_pages: int = 64
    max_pages: int = 1 << 20

    def __post_init__(self) -> None:
        if self.interval_us <= 0:
            raise FluidMemError("interval must be positive")
        if self.shrink_threshold >= self.grow_threshold:
            raise FluidMemError(
                "shrink threshold must be below grow threshold"
            )
        if self.step_pages < 1:
            raise FluidMemError("step must be >= 1 page")
        if not 1 <= self.min_pages <= self.max_pages:
            raise FluidMemError("need 1 <= min_pages <= max_pages")


class Autoscaler:
    """Fault-rate-driven LRU budget controller."""

    def __init__(
        self,
        env: Environment,
        monitor: Monitor,
        config: Optional[AutoscaleConfig] = None,
    ) -> None:
        self.env = env
        self.monitor = monitor
        self.config = config or AutoscaleConfig()
        self._process = None
        self._last_faults = 0
        #: (time_us, capacity, fault_rate_per_ms) after each decision.
        self.history: List[Tuple[float, int, float]] = []

    @property
    def running(self) -> bool:
        return self._process is not None and self._process.is_alive

    def start(self) -> None:
        if self.running:
            raise FluidMemError("autoscaler already running")
        self._last_faults = self.monitor.counters["faults"]
        self._process = self.env.process(self._run())

    def stop(self) -> None:
        """Stop sampling (also lets an idle simulation drain)."""
        if self.running:
            self._process.interrupt("stop")

    def _run(self) -> Generator:
        from ..errors import InterruptError

        config = self.config
        try:
            while True:
                yield self.env.timeout(config.interval_us)
                faults = self.monitor.counters["faults"]
                rate_per_ms = (
                    (faults - self._last_faults)
                    / (config.interval_us / 1000.0)
                )
                self._last_faults = faults
                capacity = self.monitor.lru.capacity
                if rate_per_ms > config.grow_threshold:
                    capacity = min(
                        config.max_pages, capacity + config.step_pages
                    )
                    self.monitor.set_lru_capacity(capacity)
                    self.monitor.counters.incr("autoscale_grows")
                elif rate_per_ms < config.shrink_threshold:
                    new_capacity = max(
                        config.min_pages, capacity - config.step_pages
                    )
                    if new_capacity != capacity:
                        capacity = new_capacity
                        self.monitor.set_lru_capacity(capacity)
                        yield from self.monitor.shrink_to_capacity()
                        self.monitor.counters.incr("autoscale_shrinks")
                self.history.append((self.env.now, capacity, rate_per_ms))
        except InterruptError:
            return
