"""libuserfault: FluidMem for plain processes (paper §VI-C).

Table II's measurements come from "a simple test program that reads from
and writes to a memory region ... linked with FluidMem's libuserfault
library, so there was no involvement of a virtualization layer".  This
module is that library: it registers a raw memory region for an
ordinary process and exposes the same access interface the VM port
does, minus every virtualization cost.
"""

from __future__ import annotations

import itertools
from typing import Generator

from ..errors import FluidMemError
from ..kv import KeyValueBackend, PartitionedKeyCodec
from ..mem import MemoryRegion, PAGE_SIZE, PageTable
from ..sim import Environment
from .monitor import Monitor

__all__ = ["UserfaultApp"]

#: Address where test-program regions are placed.  Each process gets
#: its own slot (distinct mmap addresses, as ASLR gives real processes)
#: so FluidMem page keys never collide across apps.
APP_REGION_BASE = 0x5500_0000_0000
APP_REGION_STRIDE = 8 << 30  # 8 GiB per process

#: Kernel fault entry + return-to-user on bare metal (perf's view of a
#: fault starts before the uffd event and ends after the retry), µs.
BARE_FAULT_OVERHEAD_US = 3.0

_app_pids = itertools.count(50_000)


class UserfaultApp:
    """A bare process with one FluidMem-registered region."""

    def __init__(
        self,
        env: Environment,
        monitor: Monitor,
        store: KeyValueBackend,
        region_pages: int,
        partition: int = 0,
    ) -> None:
        if region_pages < 1:
            raise FluidMemError("region must be at least one page")
        self.env = env
        self.monitor = monitor
        self.pid = next(_app_pids)
        self.page_table = PageTable(f"app-{self.pid}")
        base = APP_REGION_BASE + (self.pid % 4096) * APP_REGION_STRIDE
        self.region = MemoryRegion(
            base, region_pages * PAGE_SIZE, name="app-region"
        )

        codec = PartitionedKeyCodec(
            partition=0 if store.supports_partitions else partition
        )
        # VmRegistration only needs `.pid` and `.page_table` from its
        # owner, which this app provides (duck-typed QemuProcess).
        self.registration = monitor.register_process(
            owner=self, store=store, codec=codec, region=self.region
        )

    # -- addresses ---------------------------------------------------------------

    def addr(self, page_index: int) -> int:
        if not 0 <= page_index < self.region.num_pages:
            raise FluidMemError(
                f"page index {page_index} outside region of "
                f"{self.region.num_pages} pages"
            )
        return self.region.start + page_index * PAGE_SIZE

    # -- access ----------------------------------------------------------------------

    def is_resident(self, page_index: int) -> bool:
        return self.addr(page_index) in self.page_table

    def access(
        self, page_index: int, is_write: bool = False
    ) -> Generator:
        """Access one page of the region; faults via the monitor.

        No virtualization overhead — this is the bare-metal Table II
        path.
        """
        vaddr = self.addr(page_index)
        if vaddr in self.page_table:
            page = self.page_table.entry(vaddr).page
            page.write() if is_write else page.read()
            return None
        yield self.env.timeout(BARE_FAULT_OVERHEAD_US)
        fault = self.monitor.uffd.raise_fault(vaddr, self.pid, is_write)
        yield fault.resolved
        page = self.page_table.entry(vaddr).page
        page.write() if is_write else page.read()
        return page
