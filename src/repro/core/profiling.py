"""Per-code-path profiling (the built-in ability behind Table I).

"FluidMem has the built-in ability to profile individual components of
the page fault handling path" (§VI-C).  Every time the monitor charges
simulated time to one of its code paths, it reports the charge here;
:meth:`Profiler.table` then reproduces Table I's avg / stdev / 99th
columns.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple

from ..sim import LatencyRecorder

__all__ = ["CodePath", "Profiler"]


class CodePath(enum.Enum):
    """The code paths Table I reports, plus monitor-internal ones."""

    UPDATE_PAGE_CACHE = "UPDATE_PAGE_CACHE"
    INSERT_PAGE_HASH_NODE = "INSERT_PAGE_HASH_NODE"
    INSERT_LRU_CACHE_NODE = "INSERT_LRU_CACHE_NODE"
    UFFD_ZEROPAGE = "UFFD_ZEROPAGE"
    UFFD_REMAP = "UFFD_REMAP"
    UFFD_COPY = "UFFD_COPY"
    READ_PAGE = "READ_PAGE"
    WRITE_PAGE = "WRITE_PAGE"
    # Not in Table I, but useful to see where the rest of a fault goes.
    EVENT_DISPATCH = "EVENT_DISPATCH"
    LOOKUP_PAGE_HASH = "LOOKUP_PAGE_HASH"
    WAKE = "WAKE"
    # Resilience paths: backoff spent retrying remote-store operations
    # (critical-path reads / sync eviction writes / write-back flushes).
    READ_RETRY = "READ_RETRY"
    WRITE_RETRY = "WRITE_RETRY"

    @classmethod
    def table1_paths(cls) -> List["CodePath"]:
        """The eight rows of Table I, in the paper's order."""
        return [
            cls.UPDATE_PAGE_CACHE,
            cls.INSERT_PAGE_HASH_NODE,
            cls.INSERT_LRU_CACHE_NODE,
            cls.UFFD_ZEROPAGE,
            cls.UFFD_REMAP,
            cls.UFFD_COPY,
            cls.READ_PAGE,
            cls.WRITE_PAGE,
        ]


class Profiler:
    """Latency recorder per code path."""

    def __init__(self, max_samples_per_path: int = 100_000) -> None:
        self._recorders: Dict[CodePath, LatencyRecorder] = {}
        self._max_samples = max_samples_per_path

    def record(self, path: CodePath, latency_us: float) -> None:
        recorder = self._recorders.get(path)
        if recorder is None:
            recorder = LatencyRecorder(
                path.value, max_samples=self._max_samples
            )
            self._recorders[path] = recorder
        recorder.record(latency_us)

    def recorder(self, path: CodePath) -> LatencyRecorder:
        try:
            return self._recorders[path]
        except KeyError:
            raise KeyError(
                f"no samples recorded for code path {path.value}"
            ) from None

    def has_samples(self, path: CodePath) -> bool:
        return path in self._recorders

    def table(self) -> List[Tuple[str, float, float, float]]:
        """(path, avg, stdev, p99) rows in Table I's layout and order."""
        rows = []
        for path in CodePath.table1_paths():
            if path not in self._recorders:
                continue
            recorder = self._recorders[path]
            rows.append(
                (
                    path.value,
                    recorder.mean,
                    recorder.stdev,
                    recorder.percentile(99.0),
                )
            )
        return rows

    def reset(self) -> None:
        self._recorders.clear()
