"""Per-code-path profiling (the built-in ability behind Table I).

"FluidMem has the built-in ability to profile individual components of
the page fault handling path" (§VI-C).  Every time the monitor charges
simulated time to one of its code paths, it reports the charge here;
:meth:`Profiler.table` then reproduces Table I's avg / stdev / 99th
columns.

The profiler is a thin facade over a
:class:`repro.obs.MetricsRegistry`: each code path becomes one
``codepath_latency_us`` histogram (labelled with the path and, when the
monitor is observed, its VM/monitor name), so the same samples that
print Table I also land in the ``--metrics`` snapshot and the CI
perf-regression gate.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from ..obs import Histogram, MetricsRegistry

__all__ = ["CodePath", "Profiler", "CODEPATH_METRIC"]

#: The registry histogram family every code-path charge lands in.
CODEPATH_METRIC = "codepath_latency_us"


class CodePath(enum.Enum):
    """The code paths Table I reports, plus monitor-internal ones."""

    UPDATE_PAGE_CACHE = "UPDATE_PAGE_CACHE"
    INSERT_PAGE_HASH_NODE = "INSERT_PAGE_HASH_NODE"
    INSERT_LRU_CACHE_NODE = "INSERT_LRU_CACHE_NODE"
    UFFD_ZEROPAGE = "UFFD_ZEROPAGE"
    UFFD_REMAP = "UFFD_REMAP"
    UFFD_COPY = "UFFD_COPY"
    READ_PAGE = "READ_PAGE"
    WRITE_PAGE = "WRITE_PAGE"
    # Not in Table I, but useful to see where the rest of a fault goes.
    EVENT_DISPATCH = "EVENT_DISPATCH"
    LOOKUP_PAGE_HASH = "LOOKUP_PAGE_HASH"
    WAKE = "WAKE"
    # Resilience paths: backoff spent retrying remote-store operations
    # (critical-path reads / sync eviction writes / write-back flushes).
    READ_RETRY = "READ_RETRY"
    WRITE_RETRY = "WRITE_RETRY"

    @classmethod
    def table1_paths(cls) -> List["CodePath"]:
        """The eight rows of Table I, in the paper's order."""
        return [
            cls.UPDATE_PAGE_CACHE,
            cls.INSERT_PAGE_HASH_NODE,
            cls.INSERT_LRU_CACHE_NODE,
            cls.UFFD_ZEROPAGE,
            cls.UFFD_REMAP,
            cls.UFFD_COPY,
            cls.READ_PAGE,
            cls.WRITE_PAGE,
        ]


class Profiler:
    """Latency recorder per code path, backed by a metrics registry."""

    def __init__(
        self,
        max_samples_per_path: int = 100_000,
        registry: Optional[MetricsRegistry] = None,
        **labels: object,
    ) -> None:
        """``registry``/``labels`` attach the profiler to a shared
        observability registry (labels typically carry ``vm=<name>``);
        with neither, it keeps a private always-on registry so Table I
        profiling works without any observability wiring."""
        self._private = registry is None
        self._max_samples = max_samples_per_path
        if registry is None:
            registry = MetricsRegistry(
                max_samples_per_histogram=max_samples_per_path
            )
        self._registry = registry
        self._labels = dict(labels)
        self._recorded: dict = {}
        #: path -> bound Histogram.observe; record() is called once per
        #: profiled charge, so skip the instrument lookup entirely.
        self._observe: dict = {}

    def record(self, path: CodePath, latency_us: float) -> None:
        try:
            observe = self._observe[path]
        except KeyError:
            histogram = self._registry.histogram(
                CODEPATH_METRIC, path=path.value, **self._labels
            )
            self._recorded[path] = histogram
            observe = self._observe[path] = histogram.observe
        observe(latency_us)

    def observer(self, path: CodePath):
        """The cached bound ``Histogram.observe`` for ``path``.

        Burst-resolution callers (the monitor's flat fault path,
        DESIGN.md §17) record several samples per fault; holding the
        bound observer skips the per-call path lookup that
        :meth:`record` pays.  Cached observers are invalidated by
        :meth:`reset` — re-fetch after a reset.
        """
        try:
            return self._observe[path]
        except KeyError:
            histogram = self._registry.histogram(
                CODEPATH_METRIC, path=path.value, **self._labels
            )
            self._recorded[path] = histogram
            observe = self._observe[path] = histogram.observe
            return observe

    def recorder(self, path: CodePath) -> Histogram:
        """The histogram for ``path`` (mean/stdev/percentile API)."""
        try:
            return self._recorded[path]
        except KeyError:
            raise KeyError(
                f"no samples recorded for code path {path.value}"
            ) from None

    def has_samples(self, path: CodePath) -> bool:
        return path in self._recorded

    def table(self) -> List[Tuple[str, float, float, float]]:
        """(path, avg, stdev, p99) rows in Table I's layout and order."""
        rows = []
        for path in CodePath.table1_paths():
            if path not in self._recorded:
                continue
            histogram = self._recorded[path]
            rows.append(
                (
                    path.value,
                    histogram.mean,
                    histogram.stdev,
                    histogram.percentile(99.0),
                )
            )
        return rows

    def reset(self) -> None:
        """Forget this profiler's view of its paths.

        With a private registry the samples are dropped entirely; on a
        shared registry the histograms stay exported (a registry is a
        run-scoped record) but this profiler starts fresh mappings.
        """
        self._recorded.clear()
        self._observe.clear()
        if self._private:
            self._registry = MetricsRegistry(
                max_samples_per_histogram=self._max_samples
            )
