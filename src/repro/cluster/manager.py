"""Node lifecycle through ZooKeeper: joins, leaves, crashes, epochs.

The :class:`ClusterManager` is the control plane of the shard cluster.
Every shard node gets its own ZooKeeper session and announces itself
as an **ephemeral** znode under ``/fluidmem/cluster/nodes`` — exactly
how real clustered stores advertise membership.  A topology **epoch**
(a counter znode at ``/fluidmem/cluster/epoch``) is bumped on every
membership change, so routers and diagnostics can tell "the cluster
you read this placement from" apart from "the cluster now".

Three ways out of the cluster:

* :meth:`leave` — graceful: the node is taken off the ring, the
  rebalancer drains its keys onto ring members, then the session
  closes and the znode disappears.  No data is ever at risk.
* :meth:`crash` — fail-stop: the session is expired (ephemeral znode
  vanishes on every ZK replica), the node's copies are gone, and the
  rebalancer re-replicates every affected key from its surviving
  replicas back to the target replication factor.
* **detected** failure — :meth:`sync` (run by the poll process on the
  simulated clock) notices either an ephemeral znode that vanished
  (session expired externally, e.g. by a fault plan or a test) or a
  backend whose ``is_alive`` has been False for longer than
  ``crash_detect_us`` (a :class:`repro.faults.FaultyStore` in a crash
  window), and declares the node dead the same way.

ZooKeeper losing quorum degrades gracefully: ``sync`` counts the
failure and retries next poll; no topology decisions are made while
the coordination service is down.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..coord import ZooKeeperClient, ZooKeeperEnsemble
from ..errors import CoordinationError, KVError
from ..kv.api import KeyValueBackend
from ..obs import NULL_OBS, Observability
from ..sim import Environment
from .rebalance import Rebalancer
from .store import ClusterStore

__all__ = ["ClusterManager"]

NODES_PATH = "/fluidmem/cluster/nodes"
EPOCH_PATH = "/fluidmem/cluster/epoch"


class ClusterManager:
    """Registers shard nodes as ephemeral znodes; owns the epoch."""

    def __init__(
        self,
        env: Environment,
        ensemble: ZooKeeperEnsemble,
        store: ClusterStore,
        rebalancer: Rebalancer,
        poll_us: float = 500.0,
        crash_detect_us: float = 1_500.0,
        obs: Optional[Observability] = None,
    ) -> None:
        self.env = env
        self.ensemble = ensemble
        self.store = store
        self.rebalancer = rebalancer
        self.poll_us = poll_us
        self.crash_detect_us = crash_detect_us
        self.obs = obs if obs is not None else NULL_OBS
        self.counters = self.obs.counters_for(component="cluster-manager")
        self._zk = ensemble.connect()
        self._zk.ensure_path(NODES_PATH)
        if not self._zk.exists(EPOCH_PATH):
            self._zk.create(EPOCH_PATH, b"0")
        #: One ZooKeeper session per member node (the ephemeral owner).
        self._sessions: Dict[str, ZooKeeperClient] = {}
        #: When each node's backend was first seen unreachable.
        self._down_since: Dict[str, float] = {}
        self._process = None
        self._running = False

    # -- epoch ----------------------------------------------------------------

    @property
    def epoch(self) -> int:
        data, _version = self._zk.get(EPOCH_PATH)
        return int(data)

    def _bump_epoch(self, reason: str, node: str) -> int:
        data, version = self._zk.get(EPOCH_PATH)
        new = int(data) + 1
        self._zk.set(EPOCH_PATH, str(new).encode(), version=version)
        self.store.topology_epoch = new
        self.counters.incr("topology_changes")
        if self.obs.enabled:
            self.obs.registry.gauge(
                "cluster_epoch", cluster=self.store.name
            ).set(new)
            self.obs.tracer.instant(
                "topology_epoch", self.env.now, cat="cluster",
                track="cluster-manager", epoch=new, reason=reason,
                node=node,
            )
        return new

    # -- membership -----------------------------------------------------------

    def join(self, name: str, backend: KeyValueBackend) -> None:
        """Add a shard node: ephemeral znode, ring membership, epoch."""
        if name in self._sessions:
            raise KVError(f"node {name!r} is already a cluster member")
        session = self.ensemble.connect()
        session.create(
            f"{NODES_PATH}/{name}", data=name.encode(), ephemeral=True
        )
        self._sessions[name] = session
        self.store.add_node(name, backend)
        self._bump_epoch("join", name)
        self.counters.incr("nodes_joined")
        self.rebalancer.schedule()

    def leave(self, name: str) -> Generator:
        """Graceful departure: drain every key, then deregister.

        A simulation generator — it parks on the rebalancer until the
        node is empty, so callers see the leave complete only when no
        data remains on the node.
        """
        if name not in self._sessions:
            raise KVError(f"node {name!r} is not a cluster member")
        self.store.begin_drain(name)
        self.rebalancer.schedule()
        yield from self.rebalancer.wait_quiesce()
        self.store.retire_node(name)
        session = self._sessions.pop(name)
        session.close()
        self._down_since.pop(name, None)
        self._bump_epoch("leave", name)
        self.counters.incr("nodes_left")

    def crash(self, name: str) -> None:
        """Fail-stop a node: session expires, copies are lost."""
        session = self._sessions.pop(name, None)
        if session is None:
            raise KVError(f"node {name!r} is not a cluster member")
        self.ensemble.expire_session(session.session_id)
        self._vanished(name, "crash")

    def _vanished(self, name: str, reason: str) -> None:
        self._down_since.pop(name, None)
        if name in self.store.registered_nodes:
            self.store.drop_node(name)
        self._bump_epoch(reason, name)
        self.counters.incr("node_crashes")
        self.rebalancer.schedule()

    @property
    def members(self) -> tuple:
        return tuple(sorted(self._sessions))

    # -- reconciliation -------------------------------------------------------

    def sync(self) -> None:
        """Reconcile ZK membership and backend liveness with the ring.

        Called by the poll process; safe to call directly from tests.
        """
        try:
            znodes = set(self._zk.children(NODES_PATH))
        except CoordinationError:
            # Quorum lost (or our session expired): no topology
            # decisions without the coordination service.
            self.counters.incr("sync_failures")
            self._reconnect_if_expired()
            return
        # 1. Ephemeral znodes that vanished: their session expired
        # somewhere else (fault plan, test, operator).  The node is no
        # longer a member, whatever its backend says.
        for name in sorted(set(self._sessions) - znodes):
            self._sessions.pop(name)
            self._vanished(name, "session-expired")
        # 2. Liveness-detected crashes: a backend continuously
        # unreachable for crash_detect_us is declared dead and its
        # ephemeral znode is removed by expiring the session.
        now = self.env.now
        for name in self.store.registered_nodes:
            if name not in self._sessions:
                continue
            if self.store.node_is_live(name):
                self._down_since.pop(name, None)
                continue
            first = self._down_since.setdefault(name, now)
            if now - first >= self.crash_detect_us:
                session = self._sessions.pop(name)
                self.ensemble.expire_session(session.session_id)
                self._vanished(name, "crash-detected")
        # 3. Nudge the rebalancer if replication is degraded.
        if self.rebalancer.idle and self.store.under_replicated_keys():
            self.rebalancer.schedule()

    def _reconnect_if_expired(self) -> None:
        if not self._zk._expired:
            return
        try:
            self._zk = self.ensemble.connect()
        except CoordinationError:
            pass  # still no quorum; retry next poll

    # -- poll loop ------------------------------------------------------------

    def start(self) -> None:
        if self._process is None:
            self._running = True
            self._process = self.env.process(self._poll())

    def stop(self) -> None:
        self._running = False

    def _poll(self) -> Generator:
        while self._running:
            yield self.env.timeout(self.poll_us)
            self.sync()

    def __repr__(self) -> str:
        return (
            f"<ClusterManager members={len(self._sessions)} "
            f"epoch={self.store.topology_epoch}>"
        )
