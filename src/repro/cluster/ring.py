"""Consistent-hash ring with virtual nodes.

The cluster routes page keys to shard nodes by consistent hashing
(Karger-style): every node owns ``vnodes`` points on a 64-bit ring,
a key hashes to a point, and its owners are the next distinct nodes
clockwise.  Adding or removing one node only moves the keys in the
arcs that node owned — the property that keeps rebalancing traffic
proportional to the change, not to the cluster size.

Positions come from BLAKE2b (like :func:`repro.sim.derive_seed`), so
the ring layout is identical across processes and Python versions —
same-seed runs place every key on the same shard, byte for byte.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Tuple

from ..errors import KVError

__all__ = ["HashRing", "DEFAULT_VNODES"]

#: Virtual nodes per physical node.  128 points keeps per-node arc
#: shares within a few percent of even for clusters up to ~16 nodes.
DEFAULT_VNODES = 128

#: Ring positions live on a 64-bit circle.
_RING_BITS = 64


def _position(label: str) -> int:
    """Stable 64-bit ring position for ``label``."""
    digest = hashlib.blake2b(
        label.encode("utf-8"), digest_size=8, key=b"cluster-ring"
    ).digest()
    return int.from_bytes(digest, "little")


class HashRing:
    """Maps 64-bit keys to named nodes via consistent hashing."""

    def __init__(self, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise KVError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        #: Sorted ring positions and the node owning each.
        self._points: List[int] = []
        self._owner_at: Dict[int, str] = {}
        self._nodes: Dict[str, Tuple[int, ...]] = {}

    # -- membership ---------------------------------------------------------

    def add_node(self, name: str) -> None:
        if name in self._nodes:
            raise KVError(f"node {name!r} is already on the ring")
        points = []
        for index in range(self.vnodes):
            point = _position(f"{name}#{index}")
            # A 64-bit collision across vnode labels is astronomically
            # unlikely; probe linearly if it ever happens so ownership
            # stays well-defined.
            while point in self._owner_at:
                point = (point + 1) % (1 << _RING_BITS)
            self._owner_at[point] = name
            bisect.insort(self._points, point)
            points.append(point)
        self._nodes[name] = tuple(points)

    def remove_node(self, name: str) -> None:
        points = self._nodes.pop(name, None)
        if points is None:
            raise KVError(f"node {name!r} is not on the ring")
        doomed = set(points)
        self._points = [p for p in self._points if p not in doomed]
        for point in points:
            del self._owner_at[point]

    # -- lookups ------------------------------------------------------------

    def key_position(self, key: int) -> int:
        return _position(f"key:{key:#x}")

    def node_for(self, key: int) -> Optional[str]:
        """The primary owner of ``key`` (None on an empty ring)."""
        owners = self.nodes_for(key, 1)
        return owners[0] if owners else None

    def nodes_for(self, key: int, count: int) -> Tuple[str, ...]:
        """Up to ``count`` distinct owners clockwise from the key.

        The first is the primary; the rest are the consistent-hash
        replica preference order.
        """
        if not self._points or count < 1:
            return ()
        start = bisect.bisect_right(self._points, self.key_position(key))
        owners: List[str] = []
        total = len(self._points)
        for offset in range(total):
            point = self._points[(start + offset) % total]
            node = self._owner_at[point]
            if node not in owners:
                owners.append(node)
                if len(owners) == count:
                    break
        return tuple(owners)

    # -- introspection -------------------------------------------------------

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def arc_share(self, name: str) -> float:
        """Fraction of the ring owned by ``name`` (diagnostics)."""
        if name not in self._nodes:
            raise KVError(f"node {name!r} is not on the ring")
        if len(self._nodes) == 1:
            return 1.0
        total = 0
        circle = 1 << _RING_BITS
        for index, point in enumerate(self._points):
            previous = self._points[index - 1]
            if self._owner_at[point] == name:
                total += (point - previous) % circle
        return total / circle

    def __repr__(self) -> str:
        return (
            f"<HashRing nodes={len(self._nodes)} "
            f"vnodes={self.vnodes}>"
        )
