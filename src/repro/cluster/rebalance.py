"""Throttled key migration after topology changes.

The :class:`Rebalancer` is a process on the simulated clock.  It parks
until someone calls :meth:`~Rebalancer.schedule` (the ClusterManager on
join/leave/crash, the store on a degraded write), then runs migration
passes until the cluster is healthy again:

1. **Re-replicate** — keys with fewer live copies than the replication
   factor get copied from a surviving holder onto the ring-preferred
   (then least-loaded) live node, restoring durability after a crash.
2. **Drain** — keys held on a node that left the ring (a graceful
   leave in progress) are moved onto ring members, emptying the node
   so the manager can retire it.
3. **Balance** — while the max/min keys-per-node ratio exceeds
   ``balance_goal``, move one key at a time from the fullest node to
   the emptiest.  Consistent hashing alone leaves multinomial noise at
   small key counts; this greedy phase converges deterministically to
   the goal (moves stop once max and min differ by at most one key).

Every migration goes through :meth:`ClusterStore.migrate_key`, which
enforces the forwarding window — copies land before the placement
directory flips, old copies are deleted only after.  Migration traffic
is throttled: after every ``batch_keys`` moves the process sleeps
``pause_us`` so foreground faults are not starved.

All iteration orders are sorted, so a same-seed run migrates the same
keys in the same order — the determinism pin covers rebalancing too.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..check.invariants import NULL_CHECKER, CorrectnessChecker
from ..obs import NULL_OBS, Observability
from ..sim import Environment, Event
from .store import ClusterStore

__all__ = ["Rebalancer"]


class Rebalancer:
    """Background process restoring replication and key balance."""

    def __init__(
        self,
        env: Environment,
        store: ClusterStore,
        batch_keys: int = 8,
        pause_us: float = 200.0,
        balance_goal: float = 1.3,
        obs: Optional[Observability] = None,
        check: Optional[CorrectnessChecker] = None,
    ) -> None:
        self.env = env
        self.store = store
        self.batch_keys = max(1, batch_keys)
        self.pause_us = pause_us
        self.balance_goal = balance_goal
        self.obs = obs if obs is not None else NULL_OBS
        self.check = check if check is not None else NULL_CHECKER
        self.counters = self.obs.counters_for(component="rebalancer")
        store.rebalancer = self
        self._pending = False
        self._idle = True
        self._wake: Optional[Event] = None
        self._quiesce_waiters: List[Event] = []
        self._process = None
        self._moved_in_batch = 0

    # -- scheduling -----------------------------------------------------------

    def start(self) -> None:
        if self._process is None:
            self._process = self.env.process(self._run())

    def schedule(self) -> None:
        """Request a rebalance pass (idempotent, callable anywhere)."""
        self._pending = True
        if self._wake is not None and self._wake.callbacks is not None:
            wake, self._wake = self._wake, None
            wake.succeed(None)

    @property
    def idle(self) -> bool:
        """True when no pass is running and none is requested."""
        return self._idle and not self._pending

    def wait_quiesce(self) -> Generator:
        """Park until the rebalancer has drained all pending work."""
        if self.idle:
            return
        waiter = self.env.event()
        self._quiesce_waiters.append(waiter)
        yield waiter

    # -- main loop ------------------------------------------------------------

    def _run(self) -> Generator:
        while True:
            if not self._pending:
                self._idle = True
                for waiter in self._quiesce_waiters:
                    waiter.succeed(None)
                self._quiesce_waiters.clear()
                self._wake = self.env.event()
                yield self._wake
            self._pending = False
            self._idle = False
            self.counters.incr("passes")
            yield from self._pass()
            # More work may have been scheduled mid-pass (or a busy key
            # requeued); loop again before declaring quiescence.

    def _throttle(self) -> Generator:
        self._moved_in_batch += 1
        if self._moved_in_batch >= self.batch_keys:
            self._moved_in_batch = 0
            yield self.env.timeout(self.pause_us)

    def _pass(self) -> Generator:
        self._moved_in_batch = 0
        yield from self._re_replicate()
        yield from self._drain()
        yield from self._balance()
        if self.check.enabled:
            # Post-pass audit: directory, shard accounting, and ring
            # must agree once this pass's migrations have settled.
            self.check.cluster.check_steady(self.store)

    # -- phase 1: restore the replication factor ------------------------------

    def _re_replicate(self) -> Generator:
        store = self.store
        for key in store.under_replicated_keys():
            holders = store.placement_of(key)
            live = [n for n in holders if store.node_is_live(n)]
            want = min(store.replication, len(store.live_nodes()))
            if not live or len(live) >= want:
                continue
            adds = self._pick_targets(key, exclude=set(holders),
                                      count=want - len(live))
            if not adds:
                continue
            outcome = yield from store.migrate_key(key, add_nodes=adds)
            if outcome == "done":
                self.counters.incr("re_replications")
                yield from self._throttle()
            elif outcome == "busy":
                self._pending = True

    def _pick_targets(self, key, exclude, count) -> List[str]:
        """Live nodes to copy onto: ring preference, then least-loaded."""
        store = self.store
        picks: List[str] = []
        for node in store.desired_nodes(key):
            if len(picks) == count:
                return picks
            if node not in exclude and store.node_is_live(node):
                picks.append(node)
                exclude = exclude | {node}
        counts = store.shard_counts()
        spares = sorted(
            (
                node for node in store.live_nodes()
                if node not in exclude and node not in picks
                and node in store.ring
            ),
            key=lambda node: (counts.get(node, 0), node),
        )
        picks.extend(spares[: count - len(picks)])
        return picks

    # -- phase 2: empty nodes that are leaving ---------------------------------

    def _drain(self) -> Generator:
        store = self.store
        leaving = [
            node for node in store.registered_nodes
            if node not in store.ring
        ]
        for node in leaving:
            for key in store.keys_on(node):
                adds = self._pick_targets(
                    key, exclude=set(store.placement_of(key)), count=1
                )
                outcome = yield from store.migrate_key(
                    key, add_nodes=adds, drop_nodes=[node]
                )
                if outcome == "done":
                    self.counters.incr("drain_moves")
                    yield from self._throttle()
                elif outcome == "busy":
                    self._pending = True

    # -- phase 3: equalize keys per node ---------------------------------------

    def _balance(self) -> Generator:
        store = self.store
        # Greedy one-key moves; cap iterations so a pathological state
        # (every candidate key busy) cannot spin forever in one pass.
        for _ in range(16_384):
            counts = {
                node: count
                for node, count in store.shard_counts().items()
                if node in store.ring and store.node_is_live(node)
            }
            if len(counts) < 2:
                return
            donor = max(counts, key=lambda n: (counts[n], n))
            taker = min(counts, key=lambda n: (counts[n], n))
            if counts[donor] - counts[taker] <= 1:
                return
            if counts[taker] > 0 and (
                counts[donor] / counts[taker] <= self.balance_goal
            ):
                return
            moved = False
            for key in store.keys_on(donor):
                if taker in store.placement_of(key):
                    continue
                outcome = yield from store.migrate_key(
                    key, add_nodes=[taker], drop_nodes=[donor]
                )
                if outcome == "done":
                    self.counters.incr("balance_moves")
                    moved = True
                    yield from self._throttle()
                    break
                if outcome == "busy":
                    self._pending = True
                # busy or gone: try the next candidate key
            if not moved:
                # Nothing movable between this pair right now; a busy
                # key re-queued the pass, a lost key will be handled by
                # re-replication.  Stop rather than spin.
                return

    def __repr__(self) -> str:
        state = "idle" if self.idle else "active"
        return f"<Rebalancer {state} goal={self.balance_goal}>"
