"""The shard cluster: elastic remote memory across many store nodes.

FluidMem's monitor speaks to one :class:`~repro.kv.KeyValueBackend`.
This package makes that one backend an elastic cluster of shard nodes:

* :class:`HashRing` — consistent hashing with virtual nodes; node
  churn only moves the keys in the changed arcs.
* :class:`ClusterStore` — a ``KeyValueBackend`` that routes page keys
  to shard nodes, batches writes per node, and fails reads over to
  surviving replicas.  Composes with ``CompressedStore``,
  ``ReplicatedStore``, and ``FaultyStore`` on either side.
* :class:`ClusterManager` — membership via ephemeral ZooKeeper
  znodes, a topology epoch bumped on every join/leave/crash, and
  crash detection for fault-injected nodes.
* :class:`Rebalancer` — a throttled background process that restores
  the replication factor after crashes, drains leaving nodes, and
  equalizes keys per shard, all under a forwarding window so reads
  never miss mid-migration.
"""

from .manager import EPOCH_PATH, NODES_PATH, ClusterManager
from .rebalance import Rebalancer
from .ring import DEFAULT_VNODES, HashRing
from .store import ClusterStore

__all__ = [
    "HashRing",
    "DEFAULT_VNODES",
    "ClusterStore",
    "ClusterManager",
    "Rebalancer",
    "NODES_PATH",
    "EPOCH_PATH",
]
