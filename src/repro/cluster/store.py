"""The sharded cluster store: one backend over many shard nodes.

:class:`ClusterStore` is a :class:`~repro.kv.KeyValueBackend`, so the
monitor (and every wrapper — compression, replication, fault
injection) composes with it unchanged.  Internally it routes each page
key to ``replication`` shard nodes chosen by consistent hashing
(:class:`~repro.cluster.HashRing`), batches multi-writes per node, and
fails reads over to surviving replicas when a node is crashed,
partitioned, or returns corrupt data.

Placement protocol
------------------
The store keeps an authoritative **placement directory**: for every
key, the ordered tuple of nodes currently holding a durable copy.
Reads follow the directory, never the raw ring, which gives the
forwarding-window invariant during migrations:

* a migration first copies the key to its new nodes, *then* flips the
  directory entry, *then* deletes the old copies — so a concurrent
  read always finds a node that still has the bytes;
* writers and the rebalancer never race on one key: a write to a key
  under migration parks on the migration gate, and a migration skips
  any key with a write in flight (``_inflight`` is bumped before the
  writer's first yield, so the check is atomic under the cooperative
  scheduler).

New keys route by the ring; existing keys stay where the directory
says (sticky placement), which is what lets the rebalancer equalize
shard loads without the hash function fighting it.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Set, Tuple

from ..check.invariants import NULL_CHECKER, CorrectnessChecker
from ..errors import KeyNotFoundError, KVError, TransientStoreError
from ..kv.api import KeyValueBackend, WriteItem
from ..mem import PAGE_SIZE
from ..obs import NULL_OBS, Observability
from ..sim import Environment, Event
from .ring import DEFAULT_VNODES, HashRing

__all__ = ["ClusterStore"]

#: Reads per hot-shard detection window.
HOT_SHARD_WINDOW_OPS = 512
#: A shard is "hot" when it served more than this multiple of the
#: per-node fair share of the window's reads.
HOT_SHARD_FACTOR = 2.0


class ClusterStore(KeyValueBackend):
    """Route page keys across an elastic set of shard-node backends."""

    def __init__(
        self,
        env: Environment,
        replication: int = 2,
        vnodes: int = DEFAULT_VNODES,
        obs: Optional[Observability] = None,
        name: str = "cluster",
        check: Optional[CorrectnessChecker] = None,
    ) -> None:
        if replication < 1:
            raise KVError(f"replication must be >= 1, got {replication}")
        super().__init__(env)
        self.name = name
        self.replication = replication
        self.ring = HashRing(vnodes=vnodes)
        self.obs = obs if obs is not None else NULL_OBS
        self.check = check if check is not None else NULL_CHECKER
        self.counters = self.obs.counters_for(store=name)
        #: Topology epoch, bumped by the ClusterManager on join/leave/crash.
        self.topology_epoch = 0
        #: Optional rebalancer hook, wired by the ClusterManager; poked
        #: when a write completes under-replicated.
        self.rebalancer = None

        self._backends: Dict[str, KeyValueBackend] = {}
        #: key -> ordered nodes currently holding a durable copy.
        self._placement: Dict[int, Tuple[str, ...]] = {}
        self._nbytes: Dict[int, int] = {}
        self._node_keys: Dict[str, Set[int]] = {}
        self._node_bytes: Dict[str, int] = {}
        #: Nodes leaving gracefully: off the ring, still serving reads.
        self._draining: Set[str] = set()
        #: key -> gate event while the rebalancer migrates it.
        self._migrating: Dict[int, Event] = {}
        #: key -> count of writes currently in flight.
        self._inflight: Dict[int, int] = {}
        self._read_window: Dict[str, int] = {}
        self._window_total = 0

    # -- topology ------------------------------------------------------------

    def add_node(self, name: str, backend: KeyValueBackend) -> None:
        """Register a shard node and give it ring ownership."""
        if name in self._backends:
            raise KVError(f"shard node {name!r} already registered")
        self._backends[name] = backend
        self._node_keys[name] = set()
        self._node_bytes[name] = 0
        self.ring.add_node(name)
        self._refresh_gauges(name)

    def begin_drain(self, name: str) -> None:
        """Take ``name`` off the ring; it keeps serving its keys until
        the rebalancer has moved them all elsewhere."""
        self._require_node(name)
        if name in self.ring:
            self.ring.remove_node(name)
        self._draining.add(name)

    def retire_node(self, name: str) -> None:
        """Final step of a graceful leave: node must be empty."""
        self._require_node(name)
        if self._node_keys.get(name):
            raise KVError(
                f"cannot retire {name!r}: still holds "
                f"{len(self._node_keys[name])} keys"
            )
        if name in self.ring:
            self.ring.remove_node(name)
        self._draining.discard(name)
        del self._backends[name]
        del self._node_keys[name]
        del self._node_bytes[name]
        self._zero_gauges(name)

    def drop_node(self, name: str) -> None:
        """Fail-stop removal: the node and its copies are gone.

        Placement entries are pruned; keys whose last copy lived here
        are lost (counted — the chaos harness asserts this stays 0
        while the replication factor holds).
        """
        self._require_node(name)
        if name in self.ring:
            self.ring.remove_node(name)
        self._draining.discard(name)
        del self._backends[name]
        for key in sorted(self._node_keys.pop(name)):
            holders = tuple(
                node for node in self._placement[key] if node != name
            )
            if holders:
                self._placement[key] = holders
            else:
                del self._placement[key]
                self._nbytes.pop(key, None)
                self.counters.incr("keys_lost")
        del self._node_bytes[name]
        self._zero_gauges(name)

    def _require_node(self, name: str) -> None:
        if name not in self._backends:
            raise KVError(f"unknown shard node {name!r}")

    @property
    def registered_nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._backends))

    def backend_of(self, name: str) -> KeyValueBackend:
        self._require_node(name)
        return self._backends[name]

    def node_is_live(self, name: str) -> bool:
        backend = self._backends.get(name)
        return backend is not None and backend.is_alive

    def live_nodes(self) -> Tuple[str, ...]:
        return tuple(
            name for name in sorted(self._backends)
            if self._backends[name].is_alive
        )

    @property
    def is_alive(self) -> bool:
        return any(b.is_alive for b in self._backends.values())

    # -- placement bookkeeping ----------------------------------------------

    def placement_of(self, key: int) -> Tuple[str, ...]:
        return self._placement.get(key, ())

    def desired_nodes(self, key: int) -> Tuple[str, ...]:
        """The ring's preferred holders (live or not)."""
        return self.ring.nodes_for(key, self.replication)

    def keys_on(self, name: str) -> Tuple[int, ...]:
        return tuple(sorted(self._node_keys.get(name, ())))

    def shard_counts(self) -> Dict[str, int]:
        """Keys per registered node (the balance metric's input)."""
        return {
            name: len(keys) for name, keys in self._node_keys.items()
        }

    def balance_ratio(self) -> float:
        """max/min keys per ring node (1.0 = perfectly even)."""
        counts = [
            len(self._node_keys[name])
            for name in self._backends
            if name in self.ring
        ]
        if len(counts) < 2 or not self._placement:
            return 1.0
        low = min(counts)
        if low == 0:
            return float("inf")
        return max(counts) / low

    def under_replicated_keys(self) -> Tuple[int, ...]:
        """Keys with fewer live copies than the replication factor."""
        want = min(self.replication, len(self.live_nodes()) or 1)
        out = []
        for key in sorted(self._placement):
            live = sum(
                1 for node in self._placement[key]
                if self.node_is_live(node)
            )
            if live < want:
                out.append(key)
        return tuple(out)

    def _commit_placement(
        self, key: int, nbytes: int, holders: Sequence[str]
    ) -> None:
        old = self._placement.get(key, ())
        new = tuple(holders)
        old_bytes = self._nbytes.get(key, 0)
        for node in old:
            if node not in new and node in self._node_keys:
                self._node_keys[node].discard(key)
                self._node_bytes[node] -= old_bytes
        for node in new:
            if key not in self._node_keys[node]:
                self._node_keys[node].add(key)
                self._node_bytes[node] += nbytes
            elif nbytes != old_bytes:
                self._node_bytes[node] += nbytes - old_bytes
        self._placement[key] = new
        self._nbytes[key] = nbytes
        for node in set(old) | set(new):
            self._refresh_gauges(node)

    def _forget_key(self, key: int) -> None:
        nbytes = self._nbytes.pop(key, 0)
        for node in self._placement.pop(key, ()):
            if node in self._node_keys:
                self._node_keys[node].discard(key)
                self._node_bytes[node] -= nbytes
                self._refresh_gauges(node)

    def _refresh_gauges(self, node: str) -> None:
        if not self.obs.enabled or node not in self._node_keys:
            return
        registry = self.obs.registry
        registry.gauge("shard_keys", store=self.name, node=node).set(
            len(self._node_keys[node])
        )
        registry.gauge("shard_bytes", store=self.name, node=node).set(
            self._node_bytes[node]
        )

    def _zero_gauges(self, node: str) -> None:
        if self.obs.enabled:
            registry = self.obs.registry
            registry.gauge("shard_keys", store=self.name, node=node).set(0)
            registry.gauge("shard_bytes", store=self.name, node=node).set(0)

    # -- hot-shard detection -------------------------------------------------

    def _track_reads(self, node: str, count: int = 1) -> None:
        self._read_window[node] = self._read_window.get(node, 0) + count
        self._window_total += count
        if self._window_total < HOT_SHARD_WINDOW_OPS:
            return
        nodes = [name for name in self._backends if name in self.ring]
        if len(nodes) >= 2:
            fair = self._window_total / len(nodes)
            for name in sorted(self._read_window):
                share = self._read_window[name]
                if share > HOT_SHARD_FACTOR * fair:
                    self.counters.incr("hot_shards_detected")
                    if self.obs.enabled:
                        self.obs.tracer.instant(
                            "hot_shard", self.env.now, cat="cluster",
                            track=self.name, node=name,
                            reads=share, window=self._window_total,
                        )
        self._read_window.clear()
        self._window_total = 0

    # -- write routing -------------------------------------------------------

    def _write_targets(self, key: int) -> List[str]:
        """Where a write for ``key`` should land.

        Existing keys keep their (live) current holders — placement is
        sticky so rebalancing decisions persist — topped up from the
        ring's live preference order when under the replication factor.
        """
        targets = [
            node for node in self._placement.get(key, ())
            if self.node_is_live(node) and node not in self._draining
        ]
        if len(targets) < self.replication:
            for node in self.ring.nodes_for(key, len(self._backends)):
                if len(targets) >= self.replication:
                    break
                if node not in targets and self.node_is_live(node):
                    targets.append(node)
        if not targets:
            # Last resort: a draining node is still writable.
            targets = [
                node for node in self._placement.get(key, ())
                if self.node_is_live(node)
            ]
        if not targets:
            raise TransientStoreError(
                f"no live shard node can accept key {key:#x}"
            )
        return targets[: self.replication]

    def _wait_for_migrations(self, keys: Sequence[int]) -> Generator:
        """Park until no key in ``keys`` is under migration."""
        while True:
            gate = next(
                (
                    self._migrating[key] for key in keys
                    if key in self._migrating
                ),
                None,
            )
            if gate is None:
                return
            yield gate

    def _mark_inflight(self, keys: Sequence[int]) -> None:
        for key in keys:
            self._inflight[key] = self._inflight.get(key, 0) + 1

    def _clear_inflight(self, keys: Sequence[int]) -> None:
        for key in keys:
            left = self._inflight[key] - 1
            if left:
                self._inflight[key] = left
            else:
                del self._inflight[key]

    def _issue_batches(
        self, per_node: Dict[str, List[WriteItem]]
    ) -> Generator:
        """One ``write_async`` batch per node, awaited in parallel.

        Returns the set of nodes whose batch failed (transiently).
        """
        events = [
            (node, self._backends[node].write_async(items).event)
            for node, items in sorted(per_node.items())
        ]
        failed: Set[str] = set()
        for node, event in events:
            try:
                yield event
            except (TransientStoreError, KVError):
                failed.add(node)
                self.counters.incr("shard_write_failures")
        return failed

    def _write_items(self, items: List[WriteItem]) -> Generator:
        keys = [item[0] for item in items]
        yield from self._wait_for_migrations(keys)
        self._mark_inflight(keys)
        try:
            targets = {key: self._write_targets(key) for key in keys}
            per_node: Dict[str, List[WriteItem]] = {}
            for item in items:
                for node in targets[item[0]]:
                    per_node.setdefault(node, []).append(item)
            failed = yield from self._issue_batches(per_node)
            degraded = False
            for key, value, nbytes in items:
                survivors = [
                    node for node in targets[key] if node not in failed
                ]
                if not survivors:
                    raise TransientStoreError(
                        f"write of key {key:#x} failed on every "
                        f"target shard"
                    )
                self._commit_placement(key, nbytes, survivors)
                if self.check.enabled:
                    self.check.cluster.on_placement_committed(self, key)
                if len(survivors) < min(
                    self.replication, len(self.live_nodes())
                ):
                    degraded = True
            if degraded:
                self.counters.incr("degraded_writes")
                if self.rebalancer is not None:
                    self.rebalancer.schedule()
        finally:
            self._clear_inflight(keys)

    # -- KeyValueBackend operations ------------------------------------------

    def put(self, key: int, value: Any, nbytes: int = PAGE_SIZE) -> Generator:
        yield from self._write_items([(key, value, nbytes)])
        self.counters.incr("writes")

    def multi_write(self, items: List[WriteItem]) -> Generator:
        if not items:
            return
        yield from self._write_items(list(items))
        self.counters.incr("writes", by=len(items))

    def get(self, key: int) -> Generator:
        tried: Set[str] = set()
        transient = False
        while True:
            # Re-read the directory every attempt: a migration may
            # have moved the key between failovers.
            holders = self._placement.get(key)
            if holders is None:
                raise KeyNotFoundError(key)
            node = next((n for n in holders if n not in tried), None)
            if node is None:
                break
            tried.add(node)
            backend = self._backends.get(node)
            if backend is None:
                continue
            if not backend.is_alive:
                self.counters.incr("failover_reads")
                self._observe_failover(node, key, "down")
                continue
            try:
                value = yield from backend.get(key)
            except KeyNotFoundError:
                self.counters.incr("failover_reads")
                self._observe_failover(node, key, "missing")
                if self.check.enabled:
                    # A live holder without the bytes: check whether
                    # the forwarding window was dropped entirely.
                    self.check.cluster.on_unreachable(self, key)
                continue
            except TransientStoreError:
                self.counters.incr("failover_reads")
                self._observe_failover(node, key, "transient")
                transient = True
                continue
            self._track_reads(node)
            self.counters.incr("reads")
            return value
        # The directory says the key exists; every holder failed.  A
        # crashed holder can recover (or the rebalancer re-replicates),
        # so this stays retryable.
        if self.check.enabled:
            self.check.cluster.on_unreachable(self, key)
        raise TransientStoreError(
            f"no shard replica could serve key {key:#x}"
            + (" (transient shard errors)" if transient else "")
        )

    def multi_read(self, keys: List[int]) -> Generator:
        if not keys:
            return []
        per_node: Dict[Optional[str], List[int]] = {}
        for key in keys:
            node = next(
                (
                    n for n in self._placement.get(key, ())
                    if self.node_is_live(n)
                ),
                None,
            )
            per_node.setdefault(node, []).append(key)
        out: Dict[int, Any] = {}
        errors: List[Exception] = []
        procs = [
            self.env.process(
                self._read_group(node, group, out, errors)
            )
            for node, group in sorted(
                per_node.items(), key=lambda kv: (kv[0] is None, kv[0])
            )
        ]
        yield self.env.all_of(procs)
        if errors:
            for exc in errors:
                if isinstance(exc, TransientStoreError):
                    raise exc
            raise errors[0]
        return [out[key] for key in keys]

    def _read_group(
        self,
        node: Optional[str],
        group: List[int],
        out: Dict[int, Any],
        errors: List[Exception],
    ) -> Generator:
        """One node's share of a multi-read; falls back per key."""
        if node is not None and len(group) > 1:
            try:
                values = yield from self._backends[node].multi_read(
                    list(group)
                )
            except (KeyNotFoundError, TransientStoreError):
                values = None
            if values is not None:
                self._track_reads(node, len(group))
                self.counters.incr("reads", by=len(group))
                self.counters.incr("multi_reads")
                out.update(zip(group, values))
                return
            self.counters.incr("failover_reads")
        for key in group:
            try:
                out[key] = yield from self.get(key)
            except (KeyNotFoundError, TransientStoreError) as exc:
                errors.append(exc)

    def remove(self, key: int) -> Generator:
        yield from self._wait_for_migrations([key])
        holders = self._placement.get(key)
        if holders is None:
            raise KeyNotFoundError(key)
        self._mark_inflight([key])
        try:
            self._forget_key(key)
            for node in holders:
                backend = self._backends.get(node)
                if backend is None or not backend.is_alive:
                    continue
                try:
                    yield from backend.remove(key)
                except (KeyNotFoundError, TransientStoreError):
                    self.counters.incr("shard_remove_failures")
            self.counters.incr("removes")
        finally:
            self._clear_inflight([key])

    # -- migration primitive (driven by the Rebalancer) ----------------------

    def migrate_key(
        self,
        key: int,
        add_nodes: Sequence[str] = (),
        drop_nodes: Sequence[str] = (),
    ) -> Generator:
        """Move/copy one key: add copies, flip placement, drop copies.

        Returns ``"done"`` on success, ``"busy"`` when a write is in
        flight (the caller requeues), ``"gone"`` when the key vanished
        or has no live source to copy from.
        """
        if self._inflight.get(key):
            return "busy"
        holders = self._placement.get(key)
        if holders is None:
            return "gone"
        gate = self.env.event()
        self._migrating[key] = gate
        try:
            adds = [
                node for node in add_nodes
                if node not in holders and self.node_is_live(node)
            ]
            value = None
            source = None
            for node in holders:
                if not self.node_is_live(node):
                    continue
                try:
                    value = yield from self._backends[node].get(key)
                    source = node
                    break
                except (KeyNotFoundError, TransientStoreError):
                    continue
            if source is None:
                self.counters.incr("migrations_stalled")
                return "gone"
            nbytes = self._nbytes.get(key, PAGE_SIZE)
            survivors: List[str] = []
            if adds:
                failed = yield from self._issue_batches(
                    {node: [(key, value, nbytes)] for node in adds}
                )
                survivors = [n for n in adds if n not in failed]
            new_holders = [
                node for node in holders if node not in drop_nodes
            ] + survivors
            if not new_holders:
                # Every drop-target was also the only live copy and the
                # adds failed: keep the old placement, try again later.
                self.counters.incr("migrations_stalled")
                return "busy"
            self._commit_placement(key, nbytes, new_holders)
            if self.check.enabled:
                self.check.cluster.on_placement_committed(self, key)
            # Forwarding window closes: old copies go away only after
            # the directory points at the new ones.
            for node in drop_nodes:
                if node not in holders:
                    continue
                backend = self._backends.get(node)
                if backend is None or not backend.is_alive:
                    continue
                try:
                    yield from backend.remove(key)
                except (KeyNotFoundError, TransientStoreError):
                    pass
            self.counters.incr("keys_migrated")
            if self.obs.enabled:
                self.obs.tracer.instant(
                    "shard_migration", self.env.now, cat="cluster",
                    track=self.name, key=f"{key:#x}",
                    frm=",".join(holders), to=",".join(new_holders),
                )
            return "done"
        finally:
            del self._migrating[key]
            gate.succeed(None)

    # -- failover observation -------------------------------------------------

    def _observe_failover(self, node: str, key: int, reason: str) -> None:
        if self.obs.enabled:
            self.obs.tracer.instant(
                "shard_failover", self.env.now, cat="resilience",
                track=self.name, node=node, reason=reason,
                key=f"{key:#x}",
            )

    # -- introspection --------------------------------------------------------

    def contains(self, key: int) -> bool:
        return key in self._placement

    def stored_keys(self) -> int:
        return len(self._placement)

    @property
    def used_bytes(self) -> int:
        return sum(b.used_bytes for b in self._backends.values())

    def __repr__(self) -> str:
        return (
            f"<ClusterStore nodes={len(self._backends)} "
            f"keys={len(self._placement)} rf={self.replication} "
            f"epoch={self.topology_epoch}>"
        )
